// Package client is the typed Go client for the Yardstick coverage
// service (package service) — the library remote testing tools embed to
// report coverage and read metrics, instead of hand-rolling "POST trace
// JSON" calls.
//
// The client is built for flaky production networks: every call takes a
// context, each HTTP attempt gets a per-request timeout, and transient
// failures (connection errors, 5xx responses, and 429 shed responses)
// are retried with exponential backoff plus jitter. When the server
// sheds load it attaches a Retry-After hint (seconds or HTTP-date); the
// client honors the hint in place of its own backoff, capped at the
// policy's MaxDelay. Other 4xx responses are never retried — they are
// the caller's bug, not the network's. Retrying is safe for every
// endpoint: trace-fragment merge is idempotent by BDD-union semantics,
// so a fragment that was actually applied before the response was lost
// merges to the same trace when resent, and a duplicate job submission
// re-runs suites whose coverage merges to the same union.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"yardstick/internal/core"
	"yardstick/internal/delta"
	"yardstick/internal/netmodel"
	"yardstick/internal/service"
)

// APIError is a non-2xx response from the service, carrying the status
// code and the server's error message. Errors with a 4xx code other
// than 429 are returned without retries.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint, decoded from either
	// the delay-seconds or the HTTP-date form (0 when absent). Shed
	// responses (429/503 from admission control) carry it.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, e.Message)
}

// RetryPolicy bounds the retry loop. Attempt n waits roughly
// BaseDelay·2ⁿ (capped at MaxDelay) with equal jitter — half the delay
// is deterministic, half uniformly random — so a fleet of reporters
// that failed together does not retry in lockstep.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (default 4; values < 1 mean one attempt, i.e. no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the per-attempt backoff (default 3s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 3 * time.Second
	}
	return p
}

// backoff returns the jittered delay before attempt n (n >= 1).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d <= 0 || d > p.MaxDelay { // <= 0 guards shift overflow
		d = p.MaxDelay
	}
	return d/2 + rand.N(d/2+1)
}

// retryDelay returns the wait before attempt n (n >= 1). A server
// Retry-After hint on the previous attempt's error takes precedence
// over the policy's own backoff — the server knows when its queue will
// drain better than an exponential guess does — but is still capped at
// MaxDelay so a confused server cannot park the client for an hour.
func (p RetryPolicy) retryDelay(n int, lastErr error) time.Duration {
	var ae *APIError
	if errors.As(lastErr, &ae) && ae.RetryAfter > 0 {
		return min(ae.RetryAfter, p.MaxDelay)
	}
	return p.backoff(n)
}

// parseRetryAfter decodes a Retry-After header value, which RFC 9110
// allows in two forms: delay-seconds ("120") or an HTTP-date ("Fri, 07
// Aug 2026 10:00:00 GMT"). Returns 0 for absent, malformed, or
// already-elapsed values.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// DefaultRetry is the retry policy used when WithRetry is not given.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 3 * time.Second}

// headerCtxKey carries extra request headers on a context.
type headerCtxKey struct{}

// ContextWithHeader returns a context under which every request this
// package issues carries the given header — the run-context propagation
// channel: a coordinator sets X-Run-Id and X-Shard-Id once per dispatch
// and they ride along on the submit, every poll, and the artifact
// fetches without widening any method signature. Calls accumulate; a
// repeated key overrides the earlier value.
func ContextWithHeader(ctx context.Context, key, value string) context.Context {
	prev, _ := ctx.Value(headerCtxKey{}).(http.Header)
	h := prev.Clone() // nil-safe: Clone of nil is nil
	if h == nil {
		h = http.Header{}
	}
	h.Set(key, value)
	return context.WithValue(ctx, headerCtxKey{}, h)
}

// Client talks to one coverage service. The zero value is not usable;
// create with New. A Client is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retry   RetryPolicy
	timeout time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry substitutes the retry policy. RetryPolicy{MaxAttempts: 1}
// disables retries.
func WithRetry(p RetryPolicy) Option { return func(c *Client) { c.retry = p.withDefaults() } }

// WithRequestTimeout caps each individual HTTP attempt (default 30s).
// The caller's context still bounds the call as a whole, backoff sleeps
// included.
func WithRequestTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// New returns a client for the service at baseURL (e.g.
// "http://cov.internal:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      http.DefaultClient,
		retry:   DefaultRetry,
		timeout: 30 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// attempt runs one HTTP round trip. It returns the response body and
// headers when the status matches wantCode, an *APIError for other
// statuses, and the transport error otherwise.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, wantCode int) ([]byte, http.Header, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if extra, ok := ctx.Value(headerCtxKey{}).(http.Header); ok {
		for k, vs := range extra {
			req.Header[k] = vs
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != wantCode {
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(data, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(data))
		}
		return nil, resp.Header, &APIError{
			StatusCode: resp.StatusCode,
			Message:    e.Error,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()),
		}
	}
	return data, resp.Header, nil
}

// retryable reports whether an attempt error is transient: connection
// errors, 5xx responses, and 429 sheds are; other 4xx responses are
// not.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.StatusCode >= 500 || ae.StatusCode == http.StatusTooManyRequests
	}
	return true
}

// do runs attempts under the retry policy and decodes the final body
// into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body []byte, wantCode int, out any) error {
	_, err := c.doHeader(ctx, method, path, body, wantCode, out)
	return err
}

// doHeader is do, additionally returning the final response's headers —
// for endpoints whose paging metadata (X-Total-Count, Link) rides on
// headers rather than the body.
func (c *Client) doHeader(ctx context.Context, method, path string, body []byte, wantCode int, out any) (http.Header, error) {
	var lastErr error
	for n := 0; n < c.retry.MaxAttempts; n++ {
		if n > 0 {
			t := time.NewTimer(c.retry.retryDelay(n, lastErr))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("client: %s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
			}
		}
		data, hdr, err := c.attempt(ctx, method, path, body, wantCode)
		if err == nil {
			if out == nil {
				return hdr, nil
			}
			return hdr, json.Unmarshal(data, out)
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return hdr, err
		}
	}
	return nil, fmt.Errorf("client: %s %s: giving up after %d attempts: %w", method, path, c.retry.MaxAttempts, lastErr)
}

// LoadNetwork uploads a network (PUT /network), replacing the server's
// network and resetting its trace.
func (c *Client) LoadNetwork(ctx context.Context, net *netmodel.Network) (service.NetworkStats, error) {
	var buf bytes.Buffer
	var st service.NetworkStats
	if err := net.EncodeJSON(&buf); err != nil {
		return st, fmt.Errorf("client: encode network: %w", err)
	}
	err := c.do(ctx, http.MethodPut, "/network", buf.Bytes(), http.StatusOK, &st)
	return st, err
}

// PatchNetwork applies a rule-level delta document to the loaded
// network (PATCH /network) without resetting the server's trace. The
// document should carry the base fingerprint the ops were diffed
// against (NetworkStats.Fingerprint, or the previous Applied's); a
// stale base answers 409, which is not retried — re-read, re-diff,
// resend. Retrying a transient failure is safe: a delta that actually
// applied before the response was lost changes the fingerprint, so the
// resend fails the base precondition instead of double-applying.
func (c *Client) PatchNetwork(ctx context.Context, doc delta.Document) (*delta.Applied, error) {
	body, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("client: encode delta: %w", err)
	}
	var out delta.Applied
	if err := c.do(ctx, http.MethodPatch, "/network", body, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// NetworkStats fetches the loaded network's stats (GET /network).
func (c *Client) NetworkStats(ctx context.Context) (service.NetworkStats, error) {
	var st service.NetworkStats
	err := c.do(ctx, http.MethodGet, "/network", nil, http.StatusOK, &st)
	return st, err
}

// ReportTrace merges a locally recorded trace fragment into the
// server's accumulated trace (POST /trace). The merge is idempotent, so
// retried reports never double count.
func (c *Client) ReportTrace(ctx context.Context, t *core.Trace) (service.TraceStats, error) {
	var buf bytes.Buffer
	var st service.TraceStats
	if err := t.EncodeJSON(&buf); err != nil {
		return st, fmt.Errorf("client: encode trace: %w", err)
	}
	err := c.do(ctx, http.MethodPost, "/trace", buf.Bytes(), http.StatusOK, &st)
	return st, err
}

// FetchTrace downloads the accumulated trace (GET /trace), decoded
// against net — which must be the network the server holds.
func (c *Client) FetchTrace(ctx context.Context, net *netmodel.Network) (*core.Trace, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/trace", nil, http.StatusOK, &raw); err != nil {
		return nil, err
	}
	return core.DecodeTraceJSON(net, bytes.NewReader(raw))
}

// ResetTrace clears the server's accumulated trace (DELETE /trace).
func (c *Client) ResetTrace(ctx context.Context) error {
	return c.do(ctx, http.MethodDelete, "/trace", nil, http.StatusNoContent, nil)
}

// Run asks the server to run built-in suites (POST /run?suite=...),
// accumulating their coverage into the server trace. A returned result
// can be errored (Errored true, Error set) rather than pass/fail when
// that test panicked or blew a resource budget server-side; the rest of
// the suite still ran. A run the server aborted wholesale (client
// disconnect or its -run-timeout) answers 503, which the retry policy
// treats as transient — lower RetryPolicy.MaxAttempts if re-running a
// deterministically slow suite is undesirable.
func (c *Client) Run(ctx context.Context, suites ...string) ([]service.RunResult, error) {
	var out []service.RunResult
	path := "/run?suite=" + url.QueryEscape(strings.Join(suites, ","))
	err := c.do(ctx, http.MethodPost, path, nil, http.StatusOK, &out)
	return out, err
}

// Coverage fetches headline metrics and per-role rows (GET /coverage).
func (c *Client) Coverage(ctx context.Context) (service.CoverageReport, error) {
	var out service.CoverageReport
	err := c.do(ctx, http.MethodGet, "/coverage", nil, http.StatusOK, &out)
	return out, err
}

// Stats fetches the server's operational self-report (GET /stats):
// queue depths, shed totals, route latencies, and the full metric
// snapshot — the payload a coordinator federates under a node label.
func (c *Client) Stats(ctx context.Context) (service.StatsReport, error) {
	var out service.StatsReport
	err := c.do(ctx, http.MethodGet, "/stats", nil, http.StatusOK, &out)
	return out, err
}

// Gaps fetches untested rules by origin and role (GET /gaps).
func (c *Client) Gaps(ctx context.Context) ([]service.Gap, error) {
	var out []service.Gap
	err := c.do(ctx, http.MethodGet, "/gaps", nil, http.StatusOK, &out)
	return out, err
}

// Healthz checks liveness (GET /healthz), with retries.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, http.StatusOK, nil)
}

// Ready checks readiness (GET /readyz) with a single attempt: "not
// ready yet" is an expected state, not a transient failure to retry.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	_, _, err := c.attempt(ctx, http.MethodGet, "/readyz", nil, http.StatusOK)
	var ae *APIError
	if errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}
