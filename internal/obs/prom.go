// Prometheus text exposition, hand-rolled (format v0.0.4). The output
// is deterministic: families sort by name, series by label signature,
// histogram buckets by ascending upper edge — so a golden test can pin
// the exact bytes and a scrape diff is meaningful.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
)

// ContentType is the Content-Type header value for WritePrometheus
// output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every metric in the Prometheus text exposition
// format. Each family gets HELP (the help text, or the name when unset)
// and TYPE lines; histogram series expand into cumulative _bucket
// samples plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	return WritePrometheusMetrics(w, r.Help(), r.Snapshot())
}

// WritePrometheusMetrics writes an explicit metric list (sorted by name
// then labels, as Snapshot, Federation.Snapshot, and MergeMetrics all
// produce) in the Prometheus text format with the given HELP texts.
// This is the exposition path for merged fleet views, where the series
// come from several sources rather than one live registry.
func WritePrometheusMetrics(w io.Writer, help map[string]string, ms []Metric) error {
	bw := bufio.NewWriter(w)
	last := ""
	for _, m := range ms {
		if m.Name != last {
			h := help[m.Name]
			if h == "" {
				h = m.Name
			}
			fmt.Fprintf(bw, "# HELP %s %s\n", m.Name, escapeHelp(h))
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, m.Type)
			last = m.Name
		}
		switch m.Type {
		case "histogram":
			for _, b := range m.Buckets {
				fmt.Fprintf(bw, "%s_bucket{%s} %d\n", m.Name, joinSig(m.Labels, `le="`+formatLE(b.LE)+`"`), b.Count)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", m.Name, braceSig(m.Labels), formatValue(m.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", m.Name, braceSig(m.Labels), m.Count)
		case "counter":
			// Counters are integral; emit them without float formatting.
			fmt.Fprintf(bw, "%s%s %d\n", m.Name, braceSig(m.Labels), uint64(m.Value))
		default:
			fmt.Fprintf(bw, "%s%s %s\n", m.Name, braceSig(m.Labels), formatValue(m.Value))
		}
	}
	return bw.Flush()
}

// joinSig appends extra to a (possibly empty) label signature.
func joinSig(sig, extra string) string {
	if sig == "" {
		return extra
	}
	return sig + "," + extra
}

// braceSig wraps a non-empty signature in braces.
func braceSig(sig string) string {
	if sig == "" {
		return ""
	}
	return "{" + sig + "}"
}

// formatLE renders a bucket edge: shortest round-trip float, "+Inf" for
// the last bucket.
func formatLE(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}

// formatValue renders a float sample value.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
