// Package obs is Yardstick's instrumentation layer: a dependency-free,
// allocation-conscious metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms) plus lightweight hierarchical spans
// (span.go) that record a run's stage tree.
//
// The design splits responsibilities the way the BDD kernel's own
// counters demand: the hot paths (apply loops, per-test evaluation) keep
// their existing *local, non-atomic* counters, and those are drained
// into the registry only at span boundaries (see hdr.Space.FlushStats).
// The registry's own primitives are atomic so that the places that do
// touch them concurrently — per-worker shard spans, HTTP middleware —
// need no locks on the update path: a Counter.Add is one atomic add, a
// Histogram.Observe is a binary search over an immutable bounds slice
// plus three atomic adds.
//
// Metric handles are interned by (name, labels): the first lookup takes
// the registry mutex and allocates, every later lookup returns the same
// pointer, and steady-state callers cache the handle and never touch
// the registry at all.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (bit-cast through a
// uint64 so loads and stores stay single atomics).
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop; gauges are not hot-path metrics).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default latency histogram bounds in seconds,
// spanning sub-millisecond BDD stages to multi-second path walks.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram. Bounds are the inclusive upper
// edges (Prometheus `le` semantics); an implicit +Inf bucket catches the
// tail. Observations are lock-free.
type Histogram struct {
	bounds  []float64 // immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     Gauge
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v: `le` is an inclusive upper edge, so a value equal
	// to a bound lands in that bound's bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since t, in seconds.
func (h *Histogram) ObserveSince(t time.Time) { h.Observe(time.Since(t).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts, the same linear-interpolation estimate Prometheus's
// histogram_quantile() computes: find the bucket holding the q·count-th
// observation and interpolate within it assuming a uniform spread. An
// estimate in the +Inf bucket clamps to the highest finite bound — the
// histogram cannot say more than "beyond the last edge". Returns 0 when
// empty. The walk reads each bucket once without a lock, so a quantile
// taken under concurrent observation is a near-instant, not exact,
// snapshot — the same contract as a Prometheus scrape.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := uint64(0)
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, c := range counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket: clamp to the last finite edge
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// metric families ------------------------------------------------------

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (name, labels) instantiation of a family.
type series struct {
	sig  string // rendered, escaped label signature `k="v",k2="v2"`
	ctr  *Counter
	gge  *Gauge
	hist *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	typ    metricType
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry holds named metrics. The zero value is not usable; create
// with NewRegistry. All methods are safe for concurrent use. A nil
// *Registry is a valid no-op sink: every accessor returns a nil metric
// handle whose methods do nothing, so instrumented code never needs to
// branch on "is observability enabled".
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, help: map[string]string{}}
}

// Counter returns (interning on first use) the counter with the given
// name and label pairs. Labels are alternating key, value strings.
// Panics if the name is already registered as a different type.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, typeCounter, nil, labels)
	return s.ctr
}

// Gauge returns the gauge with the given name and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, typeGauge, nil, labels)
	return s.gge
}

// Histogram returns the histogram with the given name and label pairs.
// bounds applies only when the family is created by this call (nil
// selects DefBuckets); later calls reuse the family's bounds so every
// series of one name shares a bucket layout.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, typeHistogram, bounds, labels)
	return s.hist
}

// SetHelp attaches HELP text to a metric name (shown in the Prometheus
// exposition; the name itself is used when unset). Order-independent:
// help set before the metric's first use still applies.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// Help returns a copy of the registered HELP texts by metric name.
func (r *Registry) Help() map[string]string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.help))
	for name, h := range r.help {
		out[name] = h
	}
	return out
}

// VisitHistograms calls fn for each series of the named histogram family
// with its rendered label signature, in signature order. No-op when the
// family is absent or not a histogram.
func (r *Registry) VisitHistograms(name string, fn func(labels string, h *Histogram)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	f, ok := r.families[name]
	var ss []*series
	if ok && f.typ == typeHistogram {
		ss = make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
	}
	r.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool { return ss[i].sig < ss[j].sig })
	for _, s := range ss {
		fn(s.sig, s.hist)
	}
}

func (r *Registry) lookup(name string, typ metricType, bounds []float64, labels []string) *series {
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, typ: typ, series: map[string]*series{}}
		if typ == typeHistogram {
			f.bounds = newHistogram(bounds).bounds
		}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{sig: sig}
		switch typ {
		case typeCounter:
			s.ctr = &Counter{}
		case typeGauge:
			s.gge = &Gauge{}
		case typeHistogram:
			s.hist = newHistogram(f.bounds)
		}
		f.series[sig] = s
	}
	return s
}

// labelSig renders alternating key/value pairs as the canonical,
// escaped `k="v"` signature, sorted by key. Panics on an odd-length
// label list (a programming error at an instrumentation site).
func labelSig(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline (quotes are legal
// in help).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Snapshot types -------------------------------------------------------

// Bucket is one cumulative histogram bucket of a snapshot.
type Bucket struct {
	LE    float64 // inclusive upper edge; +Inf for the last bucket
	Count uint64  // cumulative count of observations <= LE
}

// MarshalJSON renders LE as a string so the +Inf edge survives JSON
// (which has no infinity literal).
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatLE(b.LE), b.Count)), nil
}

// UnmarshalJSON accepts the string-encoded form MarshalJSON produces.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	le, err := parseLE(raw.LE)
	if err != nil {
		return err
	}
	b.LE, b.Count = le, raw.Count
	return nil
}

// parseLE is the inverse of formatLE.
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Metric is one series of a Snapshot.
type Metric struct {
	Name   string `json:"name"`
	Type   string `json:"type"`
	Labels string `json:"labels,omitempty"` // rendered `k="v",…` signature
	// Value carries counter and gauge readings.
	Value float64 `json:"value"`
	// Histogram readings.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns a point-in-time copy of every series, sorted by
// metric name then label signature. Concurrent updates during the
// snapshot may be torn *across* series but each primitive value is read
// atomically; once writers are quiescent the snapshot is exact.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	// Series maps only grow; copy the slice views under the lock.
	type famSeries struct {
		f  *family
		ss []*series
	}
	all := make([]famSeries, 0, len(fams))
	for _, f := range fams {
		fs := famSeries{f: f, ss: make([]*series, 0, len(f.series))}
		for _, s := range f.series {
			fs.ss = append(fs.ss, s)
		}
		all = append(all, fs)
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool { return all[i].f.name < all[j].f.name })
	var out []Metric
	for _, fs := range all {
		sort.Slice(fs.ss, func(i, j int) bool { return fs.ss[i].sig < fs.ss[j].sig })
		for _, s := range fs.ss {
			m := Metric{Name: fs.f.name, Type: fs.f.typ.String(), Labels: s.sig}
			switch fs.f.typ {
			case typeCounter:
				m.Value = float64(s.ctr.Value())
			case typeGauge:
				m.Value = s.gge.Value()
			case typeHistogram:
				m.Count = s.hist.Count()
				m.Sum = s.hist.Sum()
				var cum uint64
				for i, le := range s.hist.bounds {
					cum += s.hist.buckets[i].Load()
					m.Buckets = append(m.Buckets, Bucket{LE: le, Count: cum})
				}
				cum += s.hist.buckets[len(s.hist.bounds)].Load()
				m.Buckets = append(m.Buckets, Bucket{LE: math.Inf(1), Count: cum})
			}
			out = append(out, m)
		}
	}
	return out
}

// ObserveStage records one stage latency into the shared per-stage
// histogram (the `yardstick_stage_duration_seconds` family required by
// the /metrics contract). Nil-safe on the registry.
func ObserveStage(r *Registry, stage string, d time.Duration) {
	r.Histogram("yardstick_stage_duration_seconds", DefBuckets, "stage", stage).Observe(d.Seconds())
}
