// Flame-style text report of a span tree: one indented line per span
// with total and self times plus the span's counter deltas, so a
// BENCH_*.json trajectory (or a slow production run) can be explained
// stage by stage. The renderer works on SpanProfile — the serialized
// span form — so it draws live local trees and imported cross-node
// timelines (coordinator spans with worker profiles grafted in) with
// the same code.
package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteFlame renders the span tree rooted at s as an indented report:
//
//	span tree (total 12.34ms):
//	  pipeline.run                      12.34ms  self  0.10ms
//	    before                           6.00ms  self  0.05ms
//	      build                          1.20ms  self  1.20ms  bdd_ops=4821
//
// Total is the span's wall time, self is total minus the children's
// totals (concurrent children can drive self to zero). Metrics print in
// recording order. Open (un-ended) spans are marked, since a profile
// with open spans is a leak.
func WriteFlame(w io.Writer, s *Span) {
	WriteFlameProfile(w, s.Profile())
}

// WriteFlameProfile renders an exported (possibly cross-node) span
// profile in the WriteFlame format. String tags print quoted after the
// timings, integer metrics unquoted, so a stitched timeline shows which
// node and run each subtree came from.
func WriteFlameProfile(w io.Writer, p *SpanProfile) {
	if p == nil {
		fmt.Fprintln(w, "span tree: (none)")
		return
	}
	fmt.Fprintf(w, "span tree (total %s):\n", fmtDur(p.Duration()))
	p.Walk(func(depth int, sp *SpanProfile) {
		name := strings.Repeat("  ", depth+1) + sp.Name
		if len(name) < 34 {
			name += strings.Repeat(" ", 34-len(name))
		}
		line := fmt.Sprintf("%s %9s  self %9s", name, fmtDur(sp.Duration()), fmtDur(sp.Self()))
		for _, t := range sp.Tags {
			line += fmt.Sprintf("  %s=%q", t.Name, t.Value)
		}
		for _, m := range sp.Metrics {
			line += fmt.Sprintf("  %s=%d", m.Name, m.Value)
		}
		if sp.Open {
			line += "  [open]"
		}
		fmt.Fprintln(w, line)
	})
}

// fmtDur renders a duration in milliseconds with two decimals — one
// unit everywhere keeps the columns summable by eye.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
}
