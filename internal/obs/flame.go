// Flame-style text report of a span tree: one indented line per span
// with total and self times plus the span's counter deltas, so a
// BENCH_*.json trajectory (or a slow production run) can be explained
// stage by stage.
package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteFlame renders the span tree rooted at s as an indented report:
//
//	span tree (total 12.34ms):
//	  pipeline.run                      12.34ms  self  0.10ms
//	    before                           6.00ms  self  0.05ms
//	      build                          1.20ms  self  1.20ms  bdd_ops=4821
//
// Total is the span's wall time, self is total minus the children's
// totals (concurrent children can drive self to zero). Metrics print in
// recording order. Open (un-ended) spans are marked, since a profile
// with open spans is a leak.
func WriteFlame(w io.Writer, s *Span) {
	if s == nil {
		fmt.Fprintln(w, "span tree: (none)")
		return
	}
	fmt.Fprintf(w, "span tree (total %s):\n", fmtDur(s.Duration()))
	s.Walk(func(depth int, sp *Span) {
		name := strings.Repeat("  ", depth+1) + sp.Name()
		if len(name) < 34 {
			name += strings.Repeat(" ", 34-len(name))
		}
		line := fmt.Sprintf("%s %9s  self %9s", name, fmtDur(sp.Duration()), fmtDur(sp.Self()))
		for _, m := range sp.Metrics() {
			line += fmt.Sprintf("  %s=%d", m.Name, m.Value)
		}
		if !sp.Ended() {
			line += "  [open]"
		}
		fmt.Fprintln(w, line)
	})
}

// fmtDur renders a duration in milliseconds with two decimals — one
// unit everywhere keeps the columns summable by eye.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
}
