package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func workerSnapshot(reqs float64) []Metric {
	reg := NewRegistry()
	reg.Counter("yardstick_http_requests_total", "route", "/run", "status", "200").Add(uint64(reqs))
	reg.Gauge("yardstick_jobs_running").Set(2)
	reg.Histogram("yardstick_http_request_duration_seconds", DefBuckets, "route", "/run").Observe(0.03)
	return reg.Snapshot()
}

func TestFederationNodeLabel(t *testing.T) {
	fed := NewFederation(time.Minute)
	now := time.Now()
	fed.Ingest("http://a:8081", workerSnapshot(5), now)
	fed.Ingest("http://b:8082", workerSnapshot(7), now)

	snap := fed.Snapshot(now)
	if len(snap) == 0 {
		t.Fatal("empty federation snapshot")
	}
	// Every series carries exactly its node label; same-named series from
	// different nodes must not collide.
	counters := map[string]float64{}
	for _, m := range snap {
		pairs, err := ParseLabelSig(m.Labels)
		if err != nil {
			t.Fatalf("series %s has unparseable labels %q: %v", m.Name, m.Labels, err)
		}
		node := ""
		for _, p := range pairs {
			if p[0] == "node" {
				node = p[1]
			}
		}
		if node == "" {
			t.Errorf("series %s{%s} missing node label", m.Name, m.Labels)
		}
		if m.Name == "yardstick_http_requests_total" {
			counters[node] = m.Value
		}
	}
	if counters["http://a:8081"] != 5 || counters["http://b:8082"] != 7 {
		t.Errorf("per-node counters = %v", counters)
	}
}

func TestFederationReplacesWholesale(t *testing.T) {
	// A worker restart resets its counters. The federated reading must
	// follow the node down, never accumulate across scrapes.
	fed := NewFederation(time.Minute)
	now := time.Now()
	fed.Ingest("n1", workerSnapshot(100), now)
	fed.Ingest("n1", workerSnapshot(3), now.Add(time.Second)) // restarted

	for _, m := range fed.Snapshot(now.Add(time.Second)) {
		if m.Name == "yardstick_http_requests_total" && m.Value != 3 {
			t.Errorf("restarted node's counter = %v, want 3 (no accumulation)", m.Value)
		}
	}
}

func TestFederationStaleness(t *testing.T) {
	fed := NewFederation(10 * time.Second)
	t0 := time.Now()
	fed.Ingest("alive", workerSnapshot(1), t0)
	fed.Ingest("dead", workerSnapshot(2), t0)

	// Within maxAge both are visible.
	if got := fed.Nodes(t0.Add(5 * time.Second)); len(got) != 2 {
		t.Fatalf("fresh nodes = %v, want 2", got)
	}

	// "dead" stops being scraped; "alive" keeps refreshing.
	t1 := t0.Add(15 * time.Second)
	fed.Ingest("alive", workerSnapshot(9), t1)
	if got := fed.Nodes(t1); len(got) != 1 || got[0] != "alive" {
		t.Fatalf("nodes after aging = %v, want [alive]", got)
	}
	for _, m := range fed.Snapshot(t1) {
		if strings.Contains(m.Labels, `node="dead"`) {
			t.Fatalf("stale node's series still exposed: %s{%s}", m.Name, m.Labels)
		}
	}

	// Revival: a node that answers again is immediately fresh, with its
	// new (reset) readings.
	t2 := t1.Add(time.Minute)
	fed.Ingest("dead", workerSnapshot(1), t2)
	fed.Ingest("alive", workerSnapshot(9), t2)
	if got := fed.Nodes(t2); len(got) != 2 {
		t.Fatalf("nodes after revival = %v, want 2", got)
	}
}

func TestParseLabelSig(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "path", `with"quote`, "esc", "back\\slash", "nl", "a\nb").Inc()
	sig := reg.Snapshot()[0].Labels

	pairs, err := ParseLabelSig(sig)
	if err != nil {
		t.Fatalf("canonical sig %q failed to parse: %v", sig, err)
	}
	if len(pairs) != 3 {
		t.Fatalf("pairs = %v", pairs)
	}
	// Parsing must be the inverse of rendering: re-rendering reproduces
	// the signature byte for byte.
	if got := renderRawSig(pairs); got != sig {
		t.Errorf("re-rendered %q != original %q", got, sig)
	}

	for _, bad := range []string{`x`, `="v"`, `k="unterminated`, `k="v"x="y"`} {
		if _, err := ParseLabelSig(bad); err == nil {
			t.Errorf("ParseLabelSig(%q) accepted malformed input", bad)
		}
	}
}

func TestInjectLabel(t *testing.T) {
	cases := []struct{ sig, want string }{
		{"", `node="n1"`},
		{`route="/run"`, `node="n1",route="/run"`},
		{`node="old",route="/run"`, `node="n1",route="/run"`}, // override wins
		{`zzz="1"`, `node="n1",zzz="1"`},                      // sorted splice
		{`corrupt`, `node="n1"`},                              // corrupt sig replaced outright
	}
	for _, c := range cases {
		if got := InjectLabel(c.sig, "node", "n1"); got != c.want {
			t.Errorf("InjectLabel(%q) = %q, want %q", c.sig, got, c.want)
		}
	}
	// Values needing escapes must come out in canonical escaped form.
	if got := InjectLabel("", "node", `a"b`); got != `node="a\"b"` {
		t.Errorf("escaped inject = %q", got)
	}
}

func TestMergeMetrics(t *testing.T) {
	a := []Metric{
		{Name: "m", Type: "counter", Labels: `node="a"`, Value: 1},
		{Name: "zz", Type: "gauge", Labels: "", Value: 5},
	}
	b := []Metric{
		{Name: "m", Type: "counter", Labels: `node="b"`, Value: 2},
		{Name: "m", Type: "counter", Labels: `node="a"`, Value: 9}, // duplicate series
		{Name: "zz", Type: "counter", Labels: `x="1"`, Value: 3},   // type conflict
	}
	merged, dropped := MergeMetrics(a, b)
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	if len(merged) != 3 {
		t.Fatalf("merged = %v", merged)
	}
	if merged[0].Labels != `node="a"` || merged[0].Value != 1 {
		t.Errorf("first source must win duplicates: %+v", merged[0])
	}
	// Output must be sorted by name then labels (the exposition-order
	// contract promlint enforces).
	if merged[0].Name != "m" || merged[1].Name != "m" || merged[2].Name != "zz" {
		t.Errorf("merge order: %v", merged)
	}
}

func TestFederatedExpositionLints(t *testing.T) {
	// End to end: two workers' snapshots plus native coordinator-style
	// series, merged and written, must be a valid exposition. (The CI
	// cluster-smoke runs the real promlint binary against the live
	// coordinator; this pins the same property in-process.)
	native := NewRegistry()
	native.Counter("yardstick_coord_dispatch_total", "node", "n1", "outcome", "success").Inc()
	native.Gauge("yardstick_coord_breaker_state", "node", "n1").Set(0)

	fed := NewFederation(time.Minute)
	now := time.Now()
	fed.Ingest("n1", workerSnapshot(4), now)
	fed.Ingest("n2", workerSnapshot(6), now)

	merged, dropped := MergeMetrics(native.Snapshot(), fed.Snapshot(now))
	if dropped != 0 {
		t.Fatalf("unexpected drops: %d", dropped)
	}
	var buf bytes.Buffer
	if err := WritePrometheusMetrics(&buf, native.Help(), merged); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Families must be contiguous: every TYPE line appears exactly once.
	seenType := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if seenType[name] {
			t.Fatalf("family %s split across the exposition:\n%s", name, out)
		}
		seenType[name] = true
	}
	for _, want := range []string{`node="n1"`, `node="n2"`, "yardstick_coord_dispatch_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}
