// Metric federation: the coordinator's view of a fleet's metrics.
//
// A Federation holds, per worker node, the most recent metric snapshot
// scraped from that node, with every series re-labelled under a `node`
// label so different workers' series never collide. Two invariants
// drive the design:
//
//   - No double counting. Each scrape REPLACES the node's snapshot
//     wholesale — federated counters are re-exported readings, not
//     re-accumulated, so a worker that restarts (counter reset) or a
//     scrape that races a flush can never inflate a series. This is why
//     federated series live here and not in a Registry: Registry
//     counters only go up, while a node's re-exported reading may
//     legally go down.
//
//   - Staleness aging. A node that stops answering keeps its last
//     snapshot only for maxAge; after that its series vanish from
//     Snapshot output rather than freezing forever at their last
//     values. A revived node's first successful scrape makes it fresh
//     again. Under netchaos (workers killed and revived mid-run) the
//     exposed fleet view therefore converges to the live nodes.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultFederationMaxAge is how long a node's last snapshot stays
// visible after its most recent successful scrape.
const DefaultFederationMaxAge = 30 * time.Second

// Federation stores per-node metric snapshots with staleness aging.
// Safe for concurrent use; a nil *Federation is a no-op.
type Federation struct {
	maxAge time.Duration

	mu    sync.Mutex
	nodes map[string]*nodeSnapshot
}

type nodeSnapshot struct {
	metrics []Metric // node label already injected, sorted
	at      time.Time
}

// NewFederation returns an empty federation. maxAge <= 0 selects
// DefaultFederationMaxAge.
func NewFederation(maxAge time.Duration) *Federation {
	if maxAge <= 0 {
		maxAge = DefaultFederationMaxAge
	}
	return &Federation{maxAge: maxAge, nodes: map[string]*nodeSnapshot{}}
}

// Ingest replaces node's snapshot with ms, stamping each series with a
// node="..." label (overriding any node label the worker itself set)
// and recording now as the scrape time. The input slice is not
// retained.
func (f *Federation) Ingest(node string, ms []Metric, now time.Time) {
	if f == nil {
		return
	}
	tagged := make([]Metric, len(ms))
	for i, m := range ms {
		m.Labels = InjectLabel(m.Labels, "node", node)
		// Buckets alias the caller's slice but snapshots are value-built per
		// scrape and never mutated after ingest.
		tagged[i] = m
	}
	sort.Slice(tagged, func(i, j int) bool {
		if tagged[i].Name != tagged[j].Name {
			return tagged[i].Name < tagged[j].Name
		}
		return tagged[i].Labels < tagged[j].Labels
	})
	f.mu.Lock()
	f.nodes[node] = &nodeSnapshot{metrics: tagged, at: now}
	f.mu.Unlock()
}

// Drop removes a node's snapshot immediately (e.g. when the coordinator
// decides the node left the fleet for good).
func (f *Federation) Drop(node string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	delete(f.nodes, node)
	f.mu.Unlock()
}

// Nodes returns the node names with a fresh (non-stale at now) snapshot,
// sorted.
func (f *Federation) Nodes(now time.Time) []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for name, ns := range f.nodes {
		if now.Sub(ns.at) <= f.maxAge {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns every fresh node's series merged into one list,
// sorted by metric name then label signature. Stale nodes contribute
// nothing; they are also pruned from the store so a long-dead fleet
// doesn't pin memory.
func (f *Federation) Snapshot(now time.Time) []Metric {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	snaps := make([][]Metric, 0, len(f.nodes))
	for name, ns := range f.nodes {
		if now.Sub(ns.at) > f.maxAge {
			delete(f.nodes, name)
			continue
		}
		snaps = append(snaps, ns.metrics)
	}
	f.mu.Unlock()
	merged, _ := MergeMetrics(snaps...)
	return merged
}

// Label signature surgery ----------------------------------------------
//
// Rendered signatures are the registry's canonical `k="v",k2="v2"` form
// with Prometheus escaping applied. The federation needs to add one
// label to an already-rendered signature without a lossy
// unescape/re-escape round trip, so these helpers parse the raw escaped
// pairs and splice in place.

// ParseLabelSig splits a rendered signature into its raw (still
// escaped) key/value pairs. Returns an error on any malformed input so
// a corrupt scrape can be rejected rather than silently mangled.
func ParseLabelSig(sig string) ([][2]string, error) {
	if sig == "" {
		return nil, nil
	}
	var pairs [][2]string
	i := 0
	for i < len(sig) {
		eq := strings.Index(sig[i:], `="`)
		if eq < 0 {
			return nil, fmt.Errorf("obs: malformed label signature %q", sig)
		}
		key := sig[i : i+eq]
		if key == "" {
			return nil, fmt.Errorf("obs: empty label name in %q", sig)
		}
		j := i + eq + 2 // first byte of the value
		v := j
		for {
			if v >= len(sig) {
				return nil, fmt.Errorf("obs: unterminated label value in %q", sig)
			}
			if sig[v] == '\\' {
				v += 2
				continue
			}
			if sig[v] == '"' {
				break
			}
			v++
		}
		pairs = append(pairs, [2]string{key, sig[j:v]})
		i = v + 1
		if i < len(sig) {
			if sig[i] != ',' {
				return nil, fmt.Errorf("obs: malformed label signature %q", sig)
			}
			i++
		}
	}
	return pairs, nil
}

// renderRawSig renders raw (already escaped) pairs back into the
// canonical sorted signature.
func renderRawSig(pairs [][2]string) string {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p[0])
		b.WriteString(`="`)
		b.WriteString(p[1])
		b.WriteByte('"')
	}
	return b.String()
}

// InjectLabel returns sig with key set to value (escaped), replacing an
// existing key of the same name and keeping the signature canonically
// sorted. A signature that fails to parse is replaced outright by the
// single injected pair — the node label must win even over corrupt
// input, or two nodes' broken series could collide.
func InjectLabel(sig, key, value string) string {
	pairs, err := ParseLabelSig(sig)
	if err != nil {
		pairs = nil
	}
	esc := escapeLabel(value)
	replaced := false
	for i := range pairs {
		if pairs[i][0] == key {
			pairs[i][1] = esc
			replaced = true
		}
	}
	if !replaced {
		pairs = append(pairs, [2]string{key, esc})
	}
	return renderRawSig(pairs)
}

// MergeMetrics merges several sorted-or-not metric snapshots into one
// list sorted by name then label signature. Conflicts are dropped, not
// guessed at: if two sources disagree on a family's type, the later
// source's series for that family are dropped; if two sources export
// the identical (name, labels) series, the later duplicate is dropped.
// The second return value counts dropped series so the caller can
// surface the conflict as a metric instead of double-reporting.
func MergeMetrics(snaps ...[]Metric) ([]Metric, int) {
	types := map[string]string{}
	seen := map[string]bool{}
	dropped := 0
	var out []Metric
	for _, snap := range snaps {
		for _, m := range snap {
			if t, ok := types[m.Name]; ok && t != m.Type {
				dropped++
				continue
			}
			key := m.Name + "\x00" + m.Labels
			if seen[key] {
				dropped++
				continue
			}
			types[m.Name] = m.Type
			seen[key] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out, dropped
}
