package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	reg := NewRegistry()
	root := NewRoot("run", reg)
	a := root.Child("load")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := root.Child("eval")
	b.Set("tests", 8)
	b.Add("tests", 2)
	b.Add("ops", 100)
	time.Sleep(time.Millisecond)
	b.EndStage()
	root.End()

	if root.OpenCount() != 0 {
		t.Errorf("open spans = %d, want 0", root.OpenCount())
	}
	if !root.Ended() || !a.Ended() || !b.Ended() {
		t.Error("spans not ended")
	}
	if root.Duration() < a.Duration() {
		t.Error("root shorter than child")
	}
	if self := root.Self(); self > root.Duration() {
		t.Errorf("self %v exceeds total %v", self, root.Duration())
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "load" || kids[1].Name() != "eval" {
		t.Errorf("children = %v", kids)
	}
	ms := b.Metrics()
	if len(ms) != 2 || ms[0] != (SpanMetric{"tests", 10}) || ms[1] != (SpanMetric{"ops", 100}) {
		t.Errorf("metrics = %v", ms)
	}
	// EndStage must have fed the stage histogram.
	h := reg.Histogram("yardstick_stage_duration_seconds", DefBuckets, "stage", "eval")
	if h.Count() != 1 {
		t.Errorf("stage histogram count = %d, want 1", h.Count())
	}
	// End is idempotent: the frozen duration must not change.
	d := b.Duration()
	b.End()
	if b.Duration() != d {
		t.Error("second End changed the duration")
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Error("nil span produced a non-nil child")
	}
	s.End()
	s.EndStage()
	s.Set("a", 1)
	s.Add("a", 1)
	s.Walk(func(int, *Span) { t.Error("walk visited a nil span") })
	if s.Ended() || s.Duration() != 0 || s.Self() != 0 || s.OpenCount() != 0 {
		t.Error("nil span reported state")
	}
	if s.Name() != "" || s.Registry() != nil || s.Children() != nil || s.Metrics() != nil {
		t.Error("nil span returned data")
	}
}

func TestSpanContext(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Error("empty context yielded a span")
	}
	s := NewSpan("root")
	ctx := ContextWithSpan(context.Background(), s)
	if SpanFromContext(ctx) != s {
		t.Error("span did not round-trip through context")
	}
	// nil spans round-trip too — the disabled path.
	ctx = ContextWithSpan(context.Background(), nil)
	if SpanFromContext(ctx) != nil {
		t.Error("nil span round-trip")
	}
}

// TestSpanConcurrentChildren exercises the fan-out pattern under -race:
// workers create sibling spans and record metrics concurrently.
func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("suite")
	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.Child("shard")
			defer c.End()
			c.Set("tests", int64(i))
			root.Add("total_tests", int64(i))
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != workers {
		t.Errorf("children = %d, want %d", got, workers)
	}
	if root.OpenCount() != 0 {
		t.Errorf("open spans = %d, want 0", root.OpenCount())
	}
	want := int64(workers * (workers - 1) / 2)
	if ms := root.Metrics(); len(ms) != 1 || ms[0].Value != want {
		t.Errorf("total_tests = %v, want %d", ms, want)
	}
}

func TestWriteFlame(t *testing.T) {
	root := NewSpan("run")
	c := root.Child("eval")
	c.Set("bdd_ops", 42)
	c.End()
	leak := root.Child("open-stage")
	_ = leak // deliberately not ended
	root.End()

	var sb strings.Builder
	WriteFlame(&sb, root)
	out := sb.String()
	for _, want := range []string{"span tree (total ", "run", "eval", "bdd_ops=42", "open-stage", "[open]"} {
		if !strings.Contains(out, want) {
			t.Errorf("flame output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("flame output = %d lines, want 4:\n%s", len(lines), out)
	}
	// Children indent deeper than the root.
	if !strings.HasPrefix(lines[1], "  run") || !strings.HasPrefix(lines[2], "    eval") {
		t.Errorf("indentation wrong:\n%s", out)
	}

	sb.Reset()
	WriteFlame(&sb, nil)
	if got := sb.String(); got != "span tree: (none)\n" {
		t.Errorf("nil flame = %q", got)
	}
}
