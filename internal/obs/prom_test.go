package obs

import (
	"bufio"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact exposition bytes: ordering,
// escaping, HELP/TYPE placement, histogram expansion. Any format drift
// shows up as a diff here before a scraper sees it.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.SetHelp("yardstick_bdd_ops_total", "BDD apply/compose operations")
	reg.Counter("yardstick_bdd_ops_total").Add(1234)
	reg.SetHelp("yardstick_http_requests_total", `requests with "quotes" and \slashes`)
	reg.Counter("yardstick_http_requests_total", "route", "/coverage", "status", "200").Add(3)
	reg.Counter("yardstick_http_requests_total", "route", `/odd"path`+"\n", "status", "500").Inc()
	reg.Gauge("yardstick_workers").Set(4)
	h := reg.Histogram("yardstick_stage_duration_seconds", []float64{0.01, 0.1}, "stage", "eval")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP yardstick_bdd_ops_total BDD apply/compose operations
# TYPE yardstick_bdd_ops_total counter
yardstick_bdd_ops_total 1234
# HELP yardstick_http_requests_total requests with "quotes" and \\slashes
# TYPE yardstick_http_requests_total counter
yardstick_http_requests_total{route="/coverage",status="200"} 3
yardstick_http_requests_total{route="/odd\"path\n",status="500"} 1
# HELP yardstick_stage_duration_seconds yardstick_stage_duration_seconds
# TYPE yardstick_stage_duration_seconds histogram
yardstick_stage_duration_seconds_bucket{stage="eval",le="0.01"} 1
yardstick_stage_duration_seconds_bucket{stage="eval",le="0.1"} 2
yardstick_stage_duration_seconds_bucket{stage="eval",le="+Inf"} 3
yardstick_stage_duration_seconds_sum{stage="eval"} 0.555
yardstick_stage_duration_seconds_count{stage="eval"} 3
# HELP yardstick_workers yardstick_workers
# TYPE yardstick_workers gauge
yardstick_workers 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusHistogramInvariant checks the cumulative invariant on
// the rendered output itself: bucket counts never decrease and the +Inf
// bucket equals _count.
func TestPrometheusHistogramInvariant(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", DefBuckets)
	for i := 0; i < 500; i++ {
		h.Observe(float64(i) / 100.0)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	var infCount, count uint64
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "lat_bucket") && !strings.HasPrefix(line, "lat_count") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if strings.HasPrefix(line, "lat_count") {
			count = v
			continue
		}
		if v < prev {
			t.Errorf("bucket decreased: %q after %d", line, prev)
		}
		prev = v
		if strings.Contains(line, `le="+Inf"`) {
			infCount = v
		}
	}
	if count != 500 || infCount != count {
		t.Errorf("count = %d, +Inf bucket = %d, want 500 each", count, infCount)
	}
}
