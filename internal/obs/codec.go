// Span profile export/import: the wire form of a span tree.
//
// A live *Span is process-local — it holds mutexes, atomics, and a
// registry pointer. SpanProfile is its frozen, serializable shadow: the
// shape a worker ships to the coordinator (GET /jobs/{id}/profile) so a
// distributed run's timeline can be stitched from spans recorded on
// different machines. The decode side is written for hostile input:
// profile bytes arrive over the network from nodes that may be
// restarting, truncating responses, or running older builds, and a
// malformed profile must degrade into a typed error — never a panic in
// the coordinator's merge loop (FuzzSpanProfileDecode pins this).
package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Decode guardrails. A legitimate profile is a stage tree — tens of
// spans, nesting a handful deep. The caps are orders of magnitude above
// that, low enough that a malicious or corrupt payload cannot stack- or
// memory-exhaust the importer.
const (
	// MaxProfileSpans bounds the total span count of a decoded profile.
	MaxProfileSpans = 100_000
	// MaxProfileDepth bounds the nesting depth of a decoded profile.
	MaxProfileDepth = 512
)

// ErrProfileFormat reports a span profile that failed structural
// validation (not JSON, oversized, too deep, negative duration).
var ErrProfileFormat = errors.New("obs: malformed span profile")

// SpanProfile is the serializable form of one span and its subtree.
// Start is wall-clock (UnixNano) so profiles recorded on different
// machines order on a shared axis — subject to clock skew, which the
// flame renderer tolerates (it prints durations, not offsets).
type SpanProfile struct {
	Name     string         `json:"name"`
	Start    int64          `json:"start"` // UnixNano
	DurNs    int64          `json:"durNs"`
	Open     bool           `json:"open,omitempty"` // never ended: a leak marker
	Tags     []SpanTag      `json:"tags,omitempty"`
	Metrics  []SpanMetric   `json:"metrics,omitempty"`
	Children []*SpanProfile `json:"children,omitempty"`
}

// Profile exports the span's subtree as a frozen SpanProfile. An open
// span exports its running duration with Open set. Nil-safe.
func (s *Span) Profile() *SpanProfile {
	if s == nil {
		return nil
	}
	p := &SpanProfile{
		Name:    s.Name(),
		Start:   s.Start().UnixNano(),
		DurNs:   s.Duration().Nanoseconds(),
		Open:    !s.Ended(),
		Tags:    s.Tags(),
		Metrics: s.Metrics(),
	}
	for _, c := range s.Children() {
		p.Children = append(p.Children, c.Profile())
	}
	return p
}

// Attach grafts child under p (appended after existing children).
// Nil-safe on both sides: attaching nothing, or to nothing, no-ops.
func (p *SpanProfile) Attach(child *SpanProfile) {
	if p == nil || child == nil {
		return
	}
	p.Children = append(p.Children, child)
}

// Duration returns the profile's recorded duration.
func (p *SpanProfile) Duration() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.DurNs)
}

// Self returns the profile's own time: duration minus the children's
// durations, clamped at zero (concurrent children can sum past the
// parent's wall time).
func (p *SpanProfile) Self() time.Duration {
	if p == nil {
		return 0
	}
	d := time.Duration(p.DurNs)
	for _, c := range p.Children {
		d -= c.Duration()
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Tag returns the value of a named tag ("" when unset or p is nil).
func (p *SpanProfile) Tag(name string) string {
	if p == nil {
		return ""
	}
	for _, t := range p.Tags {
		if t.Name == name {
			return t.Value
		}
	}
	return ""
}

// Walk visits the subtree depth-first in child order, passing each
// node's depth (0 for p). Nil-safe.
func (p *SpanProfile) Walk(fn func(depth int, sp *SpanProfile)) {
	if p == nil {
		return
	}
	var rec func(int, *SpanProfile)
	rec = func(d int, sp *SpanProfile) {
		fn(d, sp)
		for _, c := range sp.Children {
			if c != nil {
				rec(d+1, c)
			}
		}
	}
	rec(0, p)
}

// SpanCount returns the number of spans in the subtree (0 for nil).
func (p *SpanProfile) SpanCount() int {
	n := 0
	p.Walk(func(int, *SpanProfile) { n++ })
	return n
}

// EncodeJSON writes the profile as JSON.
func (p *SpanProfile) EncodeJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(p)
}

// DecodeSpanProfile parses and validates profile JSON. Every failure —
// syntax, structure, size, depth — comes back as an error wrapping
// ErrProfileFormat; no input can panic the decoder, which is what lets
// a coordinator feed it bytes from half-dead workers inside its merge
// loop.
func DecodeSpanProfile(data []byte) (*SpanProfile, error) {
	var p SpanProfile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProfileFormat, err)
	}
	spans := 0
	if err := validateProfile(&p, 0, &spans); err != nil {
		return nil, err
	}
	return &p, nil
}

// validateProfile enforces the decode guardrails over one subtree.
func validateProfile(p *SpanProfile, depth int, spans *int) error {
	if depth > MaxProfileDepth {
		return fmt.Errorf("%w: nesting deeper than %d", ErrProfileFormat, MaxProfileDepth)
	}
	*spans++
	if *spans > MaxProfileSpans {
		return fmt.Errorf("%w: more than %d spans", ErrProfileFormat, MaxProfileSpans)
	}
	if p.DurNs < 0 {
		return fmt.Errorf("%w: span %q has negative duration", ErrProfileFormat, p.Name)
	}
	for _, c := range p.Children {
		if c == nil {
			return fmt.Errorf("%w: null child under span %q", ErrProfileFormat, p.Name)
		}
		if err := validateProfile(c, depth+1, spans); err != nil {
			return err
		}
	}
	return nil
}
