package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestSpanProfileExport(t *testing.T) {
	root := NewRoot("run", nil)
	root.SetTag("run", "deadbeef")
	a := root.Child("load")
	a.Set("devices", 24)
	a.End()
	b := root.Child("eval")
	open := b.Child("hung") // deliberately left open
	_ = open
	b.End()
	root.End()

	p := root.Profile()
	if p.Name != "run" || p.Tag("run") != "deadbeef" {
		t.Fatalf("root profile = %+v", p)
	}
	if p.Open {
		t.Error("ended root exported as open")
	}
	if got := p.SpanCount(); got != 4 {
		t.Errorf("SpanCount = %d, want 4", got)
	}
	if !p.Children[1].Children[0].Open {
		t.Error("unended child not exported as open")
	}
	if len(p.Children[0].Metrics) != 1 || p.Children[0].Metrics[0].Value != 24 {
		t.Errorf("metrics = %v", p.Children[0].Metrics)
	}
	if p.Duration() < p.Children[0].Duration() {
		t.Error("profile root shorter than child")
	}
}

func TestSpanProfileRoundTrip(t *testing.T) {
	// Property: Profile → EncodeJSON → DecodeSpanProfile is the identity
	// on randomly generated trees (modulo nothing — the codec is exact).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(rng, 0)
		var buf bytes.Buffer
		if err := p.EncodeJSON(&buf); err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		got, err := DecodeSpanProfile(buf.Bytes())
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		want, _ := json.Marshal(p)
		have, _ := json.Marshal(got)
		if !bytes.Equal(want, have) {
			t.Fatalf("trial %d: round trip changed profile:\n want %s\n have %s", trial, want, have)
		}
	}
}

// randomProfile builds an arbitrary valid span tree, exercising tags,
// metrics, open spans, empty names, and ragged nesting.
func randomProfile(rng *rand.Rand, depth int) *SpanProfile {
	p := &SpanProfile{
		Name:  []string{"run", "load", "eval", "", "merge", "x y\"z"}[rng.Intn(6)],
		Start: rng.Int63n(1 << 50),
		DurNs: rng.Int63n(1 << 40),
		Open:  rng.Intn(4) == 0,
	}
	for i := rng.Intn(3); i > 0; i-- {
		p.Tags = append(p.Tags, SpanTag{Name: "tag", Value: "v"})
	}
	for i := rng.Intn(3); i > 0; i-- {
		p.Metrics = append(p.Metrics, SpanMetric{Name: "m", Value: rng.Int63n(1000)})
	}
	if depth < 4 {
		for i := rng.Intn(3); i > 0; i-- {
			p.Children = append(p.Children, randomProfile(rng, depth+1))
		}
	}
	return p
}

func TestDecodeSpanProfileRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       `{"name": `,
		"wrong type":     `[1,2,3]`,
		"null child":     `{"name":"a","children":[null]}`,
		"negative dur":   `{"name":"a","durNs":-5}`,
		"too deep":       deepProfile(MaxProfileDepth + 1),
		"string in dur":  `{"name":"a","durNs":"zero"}`,
		"child not tree": `{"name":"a","children":[{"durNs":-1}]}`,
	}
	for name, in := range cases {
		if _, err := DecodeSpanProfile([]byte(in)); err == nil {
			t.Errorf("%s: decode accepted %q", name, in)
		}
	}
	// Valid input still decodes.
	if _, err := DecodeSpanProfile([]byte(`{"name":"ok"}`)); err != nil {
		t.Fatalf("minimal profile rejected: %v", err)
	}
}

func deepProfile(depth int) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString(`{"name":"d","children":[`)
	}
	b.WriteString(`{"name":"leaf"}`)
	for i := 0; i < depth; i++ {
		b.WriteString(`]}`)
	}
	return b.String()
}

// FuzzSpanProfileDecode proves the decoder never panics and never
// returns a tree that violates its own caps — this is the input the
// coordinator feeds straight from worker HTTP responses.
func FuzzSpanProfileDecode(f *testing.F) {
	f.Add([]byte(`{"name":"run","durNs":12,"children":[{"name":"eval","open":true}]}`))
	f.Add([]byte(`{"name":"a","tags":[{"name":"run","value":"ff"}],"metrics":[{"name":"ops","value":3}]}`))
	f.Add([]byte(`{"children":[null]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(deepProfile(MaxProfileDepth + 2)))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeSpanProfile(data)
		if err != nil {
			return
		}
		// Every accepted tree must satisfy the validated invariants.
		n := 0
		maxDepth := 0
		p.Walk(func(depth int, sp *SpanProfile) {
			n++
			if depth > maxDepth {
				maxDepth = depth
			}
			if sp.DurNs < 0 {
				t.Fatalf("accepted negative duration %d", sp.DurNs)
			}
		})
		if n > MaxProfileSpans {
			t.Fatalf("accepted %d spans (cap %d)", n, MaxProfileSpans)
		}
		if maxDepth > MaxProfileDepth {
			t.Fatalf("accepted depth %d (cap %d)", maxDepth, MaxProfileDepth)
		}
		// And must re-encode cleanly.
		if err := p.EncodeJSON(bytes.NewBuffer(nil)); err != nil {
			t.Fatalf("accepted profile fails to encode: %v", err)
		}
	})
}

func TestWriteFlameProfile(t *testing.T) {
	root := NewRoot("run", nil)
	c := root.Child("eval")
	c.SetTag("suite", "default")
	c.Set("tests", 7)
	c.End()
	root.End()

	var buf bytes.Buffer
	WriteFlameProfile(&buf, root.Profile())
	out := buf.String()
	for _, want := range []string{"span tree", "run", "eval", `suite="default"`, "tests=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("flame output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	WriteFlameProfile(&buf, nil)
	if !strings.Contains(buf.String(), "(none)") {
		t.Errorf("nil profile output = %q", buf.String())
	}
}
