package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter, one gauge, and one
// histogram from many goroutines (the -race build is the point) and
// asserts the quiescent snapshot is exact.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("ops_total", "worker", "shared")
			g := reg.Gauge("last_seen")
			h := reg.Histogram("latency_seconds", nil)
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%100) / 1000.0)
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("ops_total", "worker", "shared").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	h := reg.Histogram("latency_seconds", nil)
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	// Bucket counts must sum to the observation count.
	var m Metric
	for _, s := range reg.Snapshot() {
		if s.Name == "latency_seconds" {
			m = s
		}
	}
	if len(m.Buckets) == 0 {
		t.Fatal("histogram missing from snapshot")
	}
	last := m.Buckets[len(m.Buckets)-1]
	if !math.IsInf(last.LE, 1) {
		t.Errorf("last bucket le = %v, want +Inf", last.LE)
	}
	if last.Count != m.Count {
		t.Errorf("+Inf bucket = %d, want count %d", last.Count, m.Count)
	}
	for i := 1; i < len(m.Buckets); i++ {
		if m.Buckets[i].Count < m.Buckets[i-1].Count {
			t.Errorf("bucket %d not cumulative: %d < %d", i, m.Buckets[i].Count, m.Buckets[i-1].Count)
		}
	}
}

// TestHandleInterning: same (name, labels) yields the same metric; label
// order does not matter; different labels yield distinct series.
func TestHandleInterning(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("reqs", "route", "/run", "method", "POST")
	b := reg.Counter("reqs", "method", "POST", "route", "/run")
	if a != b {
		t.Error("label order created a distinct series")
	}
	c := reg.Counter("reqs", "route", "/coverage", "method", "GET")
	if a == c {
		t.Error("distinct labels shared a series")
	}
	a.Add(2)
	c.Inc()
	if a.Value() != 2 || c.Value() != 1 {
		t.Errorf("values = %d, %d, want 2, 1", a.Value(), c.Value())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("gauge lookup of a counter name did not panic")
		}
	}()
	reg.Gauge("x")
}

// TestHistogramEdges: le is an inclusive upper bound.
func TestHistogramEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2})
	h.Observe(1)   // lands in le=1
	h.Observe(1.5) // le=2
	h.Observe(2)   // le=2
	h.Observe(3)   // +Inf
	var m Metric
	for _, s := range reg.Snapshot() {
		if s.Name == "h" {
			m = s
		}
	}
	want := []uint64{1, 3, 4} // cumulative
	for i, b := range m.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket le=%v cumulative = %d, want %d", b.LE, b.Count, want[i])
		}
	}
	if m.Sum != 7.5 {
		t.Errorf("sum = %v, want 7.5", m.Sum)
	}
}

// TestHistogramQuantile: linear interpolation inside the bucket holding
// the rank, Prometheus histogram_quantile() style.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// 100 observations uniformly in (0, 10]: the median interpolates to
	// the middle of the first bucket.
	for range 100 {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %v, want 5 (midpoint of [0,10])", got)
	}
	// Add 100 in (10, 20]: p50 lands exactly on the first edge, p75 in
	// the middle of the second bucket.
	for range 100 {
		h.Observe(15)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %v, want 10", got)
	}
	if got := h.Quantile(0.75); got != 15 {
		t.Errorf("p75 = %v, want 15 (midpoint of (10,20])", got)
	}
	// Observations past the last edge clamp to it.
	for range 1000 {
		h.Observe(99)
	}
	if got := h.Quantile(0.99); got != 30 {
		t.Errorf("p99 with +Inf mass = %v, want clamp to 30", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := h.Quantile(2); got != 30 {
		t.Errorf("q=2 = %v, want 30", got)
	}
	if got := h.Quantile(-1); got != 0 {
		t.Errorf("q=-1 = %v, want clamp to q=0 (lower edge)", got)
	}
	// Nil receiver is safe like the other accessors.
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil quantile = %v, want 0", got)
	}
}

// TestNilRegistry: a nil registry hands out working no-op metrics.
func TestNilRegistry(t *testing.T) {
	var reg *Registry
	reg.Counter("a", "k", "v").Inc()
	reg.Gauge("b").Set(1)
	reg.Histogram("c", nil).Observe(1)
	ObserveStage(reg, "x", time.Second)
	if got := reg.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot = %v, want nil", got)
	}
	if err := reg.WritePrometheus(nil); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
}

func TestOddLabelsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd label list did not panic")
		}
	}()
	NewRegistry().Counter("x", "only-key")
}
