// Hierarchical spans: the stage tree of one run.
//
// A Span measures one stage (load network, compute match sets, one
// shard's suite evaluation, trace merge, …). Spans nest: children are
// created with Child — concurrently when stages fan out across workers
// — and each span carries named integer metrics, the per-span counter
// deltas drained from the BDD engine's local stats at span boundaries.
//
// Every method is nil-receiver safe, so uninstrumented call paths
// (a nil span threaded through a context) cost a pointer test and
// nothing else. This is what keeps instrumentation overhead within the
// benchmark budget: when nobody asked for a profile, no span exists and
// no time.Now fires in the sharded engine or the suite runner.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanMetric is one named counter delta recorded on a span.
type SpanMetric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// SpanTag is one named string annotation on a span — identity that
// numbers cannot carry (a run ID, a node URL, a suite name). Tags are
// what link a worker's exported span profile back to the distributed
// run that dispatched it.
type SpanTag struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Span is one timed stage of a run. Create roots with NewRoot (or
// NewSpan), children with Child, and finish with End. A Span is safe
// for concurrent use: workers may create sibling children and record
// metrics concurrently.
type Span struct {
	name  string
	reg   *Registry // inherited by children; may be nil
	start time.Time
	durNs atomic.Int64 // -1 while open, elapsed nanoseconds once ended

	mu       sync.Mutex
	children []*Span
	metrics  []SpanMetric
	tags     []SpanTag
}

// NewSpan starts a root span with no registry attached.
func NewSpan(name string) *Span { return NewRoot(name, nil) }

// NewRoot starts a root span whose descendants share reg (retrievable
// with Registry; nil is fine and disables registry-side recording).
func NewRoot(name string, reg *Registry) *Span {
	s := &Span{name: name, reg: reg, start: time.Now()}
	s.durNs.Store(-1)
	return s
}

// Child starts a sub-span. Safe to call from multiple goroutines on the
// same parent; returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, reg: s.reg, start: time.Now()}
	c.durNs.Store(-1)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End freezes the span's duration. Idempotent: the first End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start).Nanoseconds()
	if d < 0 {
		d = 0
	}
	s.durNs.CompareAndSwap(-1, d)
}

// EndStage ends the span and records its duration into the shared
// per-stage latency histogram of the attached registry (no-op without
// one). Use for the named pipeline stages whose latencies /metrics
// promises.
func (s *Span) EndStage() {
	if s == nil {
		return
	}
	s.End()
	if s.reg != nil {
		ObserveStage(s.reg, s.name, s.Duration())
	}
}

// Ended reports whether End has run.
func (s *Span) Ended() bool { return s != nil && s.durNs.Load() >= 0 }

// Name returns the span's stage name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Registry returns the registry attached at the root (nil-safe).
func (s *Span) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Duration returns the frozen duration of an ended span, or the
// still-running elapsed time of an open one.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if d := s.durNs.Load(); d >= 0 {
		return time.Duration(d)
	}
	return time.Since(s.start)
}

// Self returns the span's own time: Duration minus the durations of its
// children (clamped at zero — concurrent children can legitimately sum
// past the parent's wall time).
func (s *Span) Self() time.Duration {
	if s == nil {
		return 0
	}
	d := s.Duration()
	for _, c := range s.Children() {
		d -= c.Duration()
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Children returns a copy of the child list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Set records (or replaces) a named metric on the span.
func (s *Span) Set(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.metrics {
		if s.metrics[i].Name == name {
			s.metrics[i].Value = v
			return
		}
	}
	s.metrics = append(s.metrics, SpanMetric{name, v})
}

// Add adds v to a named metric, creating it at v.
func (s *Span) Add(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.metrics {
		if s.metrics[i].Name == name {
			s.metrics[i].Value += v
			return
		}
	}
	s.metrics = append(s.metrics, SpanMetric{name, v})
}

// SetTag records (or replaces) a named string annotation on the span.
func (s *Span) SetTag(name, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.tags {
		if s.tags[i].Name == name {
			s.tags[i].Value = value
			return
		}
	}
	s.tags = append(s.tags, SpanTag{name, value})
}

// Tag returns the value of a named tag ("" when unset or s is nil).
func (s *Span) Tag(name string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tags {
		if t.Name == name {
			return t.Value
		}
	}
	return ""
}

// Tags returns a copy of the span's tags in recording order.
func (s *Span) Tags() []SpanTag {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanTag, len(s.tags))
	copy(out, s.tags)
	return out
}

// Metrics returns a copy of the span's metrics in recording order.
func (s *Span) Metrics() []SpanMetric {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanMetric, len(s.metrics))
	copy(out, s.metrics)
	return out
}

// OpenCount returns the number of spans in the subtree (including s)
// that have not been ended — the span-leak detector the chaos tests
// assert on: a panicking test or a cancelled context must still leave
// every span closed by its deferred End.
func (s *Span) OpenCount() int {
	if s == nil {
		return 0
	}
	n := 0
	if !s.Ended() {
		n++
	}
	for _, c := range s.Children() {
		n += c.OpenCount()
	}
	return n
}

// Walk visits the subtree depth-first in creation order, passing each
// span's depth (0 for s).
func (s *Span) Walk(fn func(depth int, sp *Span)) {
	if s == nil {
		return
	}
	var rec func(int, *Span)
	rec = func(d int, sp *Span) {
		fn(d, sp)
		for _, c := range sp.Children() {
			rec(d+1, c)
		}
	}
	rec(0, s)
}

// Context plumbing -----------------------------------------------------

type spanCtxKey struct{}

// ContextWithSpan attaches s to ctx; downstream stages (the sharded
// engine's workers, suite runners) pick it up with SpanFromContext and
// hang their sub-spans beneath it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span attached to ctx, or nil — and nil is
// a fully working no-op span, so callers chain without checking.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
