package promlint

import (
	"strings"
	"testing"

	"yardstick/internal/obs"
)

func lint(t *testing.T, doc string) []Issue {
	t.Helper()
	return Lint(strings.NewReader(doc))
}

func TestCleanDocument(t *testing.T) {
	doc := `# HELP reqs_total requests
# TYPE reqs_total counter
reqs_total{route="/run",status="200"} 3
reqs_total{route="/odd\"path\n"} 1
# TYPE lat histogram
lat_bucket{le="0.1"} 2
lat_bucket{le="+Inf"} 5
lat_sum 1.25
lat_count 5
# TYPE up gauge
up 1
`
	if issues := lint(t, doc); len(issues) != 0 {
		t.Errorf("clean document flagged: %v", issues)
	}
}

func TestBadDocuments(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"type-after-sample", "x_total 1\n# TYPE x_total counter\n", "after its first sample"},
		{"bad-type", "# TYPE x florp\n", "unknown type"},
		{"bad-name", "1bad 2\n", "invalid metric name"},
		{"bad-label-name", `x{1le="2"} 3` + "\n", "invalid label name"},
		{"bad-escape", `x{a="\q"} 1` + "\n", "invalid escape"},
		{"unquoted-label", "x{a=2} 1\n", "not quoted"},
		{"dup-series", "x 1\nx 1\n", "duplicate sample"},
		{"dup-type", "# TYPE x counter\n# TYPE x counter\n", "duplicate TYPE"},
		{"dup-help", "# HELP x a\n# HELP x b\n", "duplicate HELP"},
		{"bad-value", "x nope\n", "invalid sample value"},
		{"split-family", "x 1\ny 1\nx{a=\"b\"} 1\n", "not contiguous"},
		{"hist-no-inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n", "missing the +Inf bucket"},
		{"hist-decreasing", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "below previous bucket"},
		{"hist-count-mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n", "_count 4 != +Inf bucket 3"},
		{"hist-no-sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n", "missing _sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			issues := lint(t, tc.doc)
			for _, i := range issues {
				if strings.Contains(i.Msg, tc.want) {
					return
				}
			}
			t.Errorf("no issue matching %q in %v", tc.want, issues)
		})
	}
}

// TestObsOutputIsClean: whatever the obs registry emits must pass the
// linter — the two halves of the contract meet here.
func TestObsOutputIsClean(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetHelp("yardstick_bdd_ops_total", "ops with \\slashes\nand newlines")
	reg.Counter("yardstick_bdd_ops_total").Add(42)
	reg.Counter("reqs", "route", `/odd"path`+"\n", "status", "200").Inc()
	h := reg.Histogram("lat", obs.DefBuckets, "stage", "eval")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 50)
	}
	reg.Gauge("workers").Set(4)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if issues := lint(t, sb.String()); len(issues) != 0 {
		t.Errorf("obs exposition flagged: %v\n%s", issues, sb.String())
	}
}
