// Package promlint validates Prometheus text exposition (format 0.0.4)
// well-formedness: the checks a scraper would fail on, plus the
// histogram invariants a subtly broken exporter gets wrong first. It
// exists so CI can scrape a briefly started daemon and fail on malformed
// output instead of discovering it in a production Prometheus.
package promlint

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Issue is one lint finding, anchored to a 1-based line number (0 for
// whole-document findings).
type Issue struct {
	Line int
	Msg  string
}

func (i Issue) String() string {
	if i.Line == 0 {
		return i.Msg
	}
	return fmt.Sprintf("line %d: %s", i.Line, i.Msg)
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	validTypes   = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
)

// sample is one parsed sample line.
type sample struct {
	line   int
	name   string
	labels map[string]string
	value  float64
}

// Lint reads an exposition document and returns every issue found (nil
// for a clean document).
func Lint(r io.Reader) []Issue {
	var issues []Issue
	addf := func(line int, format string, args ...any) {
		issues = append(issues, Issue{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	typeOf := map[string]string{}   // family -> declared type
	typeLine := map[string]int{}    // family -> TYPE declaration line
	helpSeen := map[string]bool{}   // family -> HELP seen
	sampleSeen := map[string]int{}  // family -> first sample line
	closed := map[string]bool{}     // family group ended (another family started)
	seriesSeen := map[string]int{}  // name + canonical labels -> line (duplicates)
	var samples []sample
	lastFamily := ""

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 {
					addf(n, "%s comment without a metric name", fields[1])
					continue
				}
				name := fields[2]
				if !metricNameRe.MatchString(name) {
					addf(n, "invalid metric name %q in %s", name, fields[1])
					continue
				}
				switch fields[1] {
				case "HELP":
					if helpSeen[name] {
						addf(n, "duplicate HELP for %s", name)
					}
					helpSeen[name] = true
					if len(fields) >= 4 && strings.Contains(strings.ReplaceAll(fields[3], `\\`, ``), `\`) &&
						!validHelpEscapes(fields[3]) {
						addf(n, "invalid escape in HELP text for %s", name)
					}
				case "TYPE":
					if len(fields) < 4 {
						addf(n, "TYPE for %s without a type", name)
						continue
					}
					typ := fields[3]
					if !validTypes[typ] {
						addf(n, "unknown type %q for %s", typ, name)
					}
					if _, dup := typeOf[name]; dup {
						addf(n, "duplicate TYPE for %s", name)
					}
					if first, ok := sampleSeen[name]; ok {
						addf(n, "TYPE for %s after its first sample (line %d)", name, first)
					}
					typeOf[name] = typ
					typeLine[name] = n
				}
			}
			continue // other comments are legal
		}

		s, err := parseSample(line)
		if err != nil {
			addf(n, "%v", err)
			continue
		}
		s.line = n
		fam := familyOf(s.name, typeOf)
		if fam != lastFamily {
			if lastFamily != "" {
				closed[lastFamily] = true
			}
			if closed[fam] {
				addf(n, "samples for %s are not contiguous (family reopened)", fam)
			}
			lastFamily = fam
		}
		if _, ok := sampleSeen[fam]; !ok {
			sampleSeen[fam] = n
		}
		key := s.name + "{" + canonicalLabels(s.labels) + "}"
		if prev, dup := seriesSeen[key]; dup {
			addf(n, "duplicate sample %s (first at line %d)", key, prev)
		}
		seriesSeen[key] = n
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		addf(0, "read: %v", err)
	}

	issues = append(issues, checkHistograms(typeOf, samples)...)
	return issues
}

// familyOf strips the _bucket/_sum/_count suffix when the base name is a
// declared histogram (or summary, for _sum/_count).
func familyOf(name string, typeOf map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		switch typeOf[base] {
		case "histogram":
			return base
		case "summary":
			if suf != "_bucket" {
				return base
			}
		}
	}
	return name
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (sample, error) {
	s := sample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("sample line without a value: %q", line)
	}
	s.name = line[:i]
	if !metricNameRe.MatchString(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value (and optional timestamp) after %q", s.name)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("invalid sample value %q: %v", fields[0], err)
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at text[0] == '{',
// returning the index just past the closing brace.
func parseLabels(text string, out map[string]string) (int, error) {
	i := 1
	for {
		// Tolerate `{}` and a trailing comma before `}`.
		if i < len(text) && text[i] == '}' {
			return i + 1, nil
		}
		j := strings.IndexByte(text[i:], '=')
		if j < 0 {
			return 0, fmt.Errorf("unterminated label block")
		}
		name := text[i : i+j]
		if !labelNameRe.MatchString(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += j + 1
		if i >= len(text) || text[i] != '"' {
			return 0, fmt.Errorf("label %s value is not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(text) {
				return 0, fmt.Errorf("unterminated value for label %s", name)
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, fmt.Errorf("dangling escape in label %s", name)
				}
				switch text[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("invalid escape \\%c in label %s", text[i+1], name)
				}
				val.WriteByte(text[i+1])
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val.String()
		if i < len(text) && text[i] == ',' {
			i++
			continue
		}
		if i < len(text) && text[i] == '}' {
			return i + 1, nil
		}
		return 0, fmt.Errorf("expected ',' or '}' after label %s", name)
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func canonicalLabels(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, m[k])
	}
	return b.String()
}

func validHelpEscapes(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			continue
		}
		if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != 'n') {
			return false
		}
		i++
	}
	return true
}

// checkHistograms verifies, per histogram series (samples grouped by
// non-le labels): +Inf bucket present, bucket counts non-decreasing by
// ascending le, +Inf equals _count, and _sum/_count present.
func checkHistograms(typeOf map[string]string, samples []sample) []Issue {
	var issues []Issue
	type hist struct {
		buckets  []sample // _bucket samples
		sum, cnt *sample
	}
	groups := map[string]*hist{}
	var order []string
	get := func(key string) *hist {
		h, ok := groups[key]
		if !ok {
			h = &hist{}
			groups[key] = h
			order = append(order, key)
		}
		return h
	}
	for i := range samples {
		s := samples[i]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.name, suf)
			if base == s.name || typeOf[base] != "histogram" {
				continue
			}
			labels := map[string]string{}
			for k, v := range s.labels {
				if k != "le" {
					labels[k] = v
				}
			}
			key := base + "{" + canonicalLabels(labels) + "}"
			h := get(key)
			switch suf {
			case "_bucket":
				if _, ok := s.labels["le"]; !ok {
					issues = append(issues, Issue{s.line, fmt.Sprintf("%s_bucket without an le label", base)})
					continue
				}
				h.buckets = append(h.buckets, s)
			case "_sum":
				h.sum = &samples[i]
			case "_count":
				h.cnt = &samples[i]
			}
		}
	}
	for _, key := range order {
		h := groups[key]
		if len(h.buckets) == 0 {
			issues = append(issues, Issue{0, fmt.Sprintf("histogram %s has no buckets", key)})
			continue
		}
		type edge struct {
			le float64
			s  sample
		}
		edges := make([]edge, 0, len(h.buckets))
		bad := false
		for _, b := range h.buckets {
			le, err := parseValue(b.labels["le"])
			if err != nil {
				issues = append(issues, Issue{b.line, fmt.Sprintf("histogram %s: invalid le %q", key, b.labels["le"])})
				bad = true
				continue
			}
			edges = append(edges, edge{le, b})
		}
		if bad {
			continue
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
		var inf *edge
		for i := range edges {
			if i > 0 && edges[i].s.value < edges[i-1].s.value {
				issues = append(issues, Issue{edges[i].s.line,
					fmt.Sprintf("histogram %s: bucket le=%q count %v below previous bucket %v",
						key, edges[i].s.labels["le"], edges[i].s.value, edges[i-1].s.value)})
			}
			if math.IsInf(edges[i].le, 1) {
				inf = &edges[i]
			}
		}
		if inf == nil {
			issues = append(issues, Issue{edges[len(edges)-1].s.line, fmt.Sprintf("histogram %s missing the +Inf bucket", key)})
			continue
		}
		if h.cnt == nil {
			issues = append(issues, Issue{0, fmt.Sprintf("histogram %s missing _count", key)})
		} else if h.cnt.value != inf.s.value {
			issues = append(issues, Issue{h.cnt.line,
				fmt.Sprintf("histogram %s: _count %v != +Inf bucket %v", key, h.cnt.value, inf.s.value)})
		}
		if h.sum == nil {
			issues = append(issues, Issue{0, fmt.Sprintf("histogram %s missing _sum", key)})
		}
	}
	return issues
}
