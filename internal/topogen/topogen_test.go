package topogen

import (
	"net/netip"
	"strings"
	"testing"

	"yardstick/internal/netmodel"
)

func TestBuildExampleShape(t *testing.T) {
	ex, err := BuildExample(ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Borders) != 2 || len(ex.Spines) != 2 || len(ex.Leaves) != 3 {
		t.Fatalf("shape: %d borders %d spines %d leaves", len(ex.Borders), len(ex.Spines), len(ex.Leaves))
	}
	st := ex.Net.Stats()
	// Links: spines×borders (4) + leaves×spines (6).
	if st.Links != 10 {
		t.Errorf("links = %d, want 10", st.Links)
	}
	if !ex.Net.MatchSetsComputed() {
		t.Error("network should be frozen")
	}
	// Every leaf prefix route must exist on every other device.
	for _, l := range ex.Leaves {
		p := ex.LeafPrefix[l]
		for _, d := range ex.Net.Devices {
			if d.ID == l {
				continue
			}
			if ex.RIB.RIB[d.ID][p] == nil {
				t.Errorf("device %s missing route to %v", d.Name, p)
			}
		}
	}
	// Spines learn the default from both borders (ECMP).
	def := netip.MustParsePrefix("0.0.0.0/0")
	for _, s := range ex.Spines {
		rt := ex.RIB.RIB[s][def]
		if rt == nil || len(rt.NextHops) != 2 {
			t.Errorf("spine %d default route = %+v, want 2 next hops", s, rt)
		}
	}
}

func TestBuildExampleBug(t *testing.T) {
	ex, err := BuildExample(ExampleOpts{BugNullRoute: true})
	if err != nil {
		t.Fatal(err)
	}
	def := netip.MustParsePrefix("0.0.0.0/0")
	b2, _ := ex.Net.DeviceByName("b2")
	// B2's default is a drop rule.
	var found bool
	for _, id := range b2.FIB {
		r := ex.Net.Rule(id)
		if r.Match.DstPrefix == def {
			found = true
			if r.Action.Kind != netmodel.ActDrop {
				t.Error("b2 default should be null-routed")
			}
		}
	}
	if !found {
		t.Fatal("b2 has no default rule")
	}
	// Spines see only B1 as the default next hop.
	b1, _ := ex.Net.DeviceByName("b1")
	for _, s := range ex.Spines {
		rt := ex.RIB.RIB[s][def]
		if rt == nil || len(rt.NextHops) != 1 || rt.NextHops[0] != b1.ID {
			t.Errorf("spine %d default = %+v, want next hop only b1", s, rt)
		}
	}
}

func TestBuildExampleB1FailureOutage(t *testing.T) {
	// With the bug and B1 removed, spines have no default: the outage.
	ex, err := BuildExample(ExampleOpts{BugNullRoute: true, OmitB1: true})
	if err != nil {
		t.Fatal(err)
	}
	def := netip.MustParsePrefix("0.0.0.0/0")
	for _, s := range ex.Spines {
		if ex.RIB.RIB[s][def] != nil {
			t.Error("spine should have no default after B1 failure")
		}
	}
	// Without the bug, B2 alone still provides the default.
	ex2, err := BuildExample(ExampleOpts{OmitB1: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ex2.Spines {
		if ex2.RIB.RIB[s][def] == nil {
			t.Error("healthy B2 should provide the default")
		}
	}
}

func TestBuildFatTreeShape(t *testing.T) {
	for _, k := range []int{4, 6, 8} {
		ft, err := BuildFatTree(k)
		if err != nil {
			t.Fatal(err)
		}
		h := k / 2
		if len(ft.ToRs) != k*h || len(ft.Aggs) != k*h || len(ft.Cores) != h*h {
			t.Fatalf("k=%d: %d tors %d aggs %d cores", k, len(ft.ToRs), len(ft.Aggs), len(ft.Cores))
		}
		if got := ft.Net.Stats().Devices; got != FatTreeSize(k) {
			t.Errorf("k=%d: %d devices, want %d", k, got, FatTreeSize(k))
		}
		// Links: k pods × h×h + h×h groups × k... = k³/2.
		if got, want := ft.Net.Stats().Links, k*k*k/2; got != want {
			t.Errorf("k=%d: %d links, want %d", k, got, want)
		}
	}
}

func TestBuildFatTreeRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 3, 90} {
		if _, err := BuildFatTree(k); err == nil {
			t.Errorf("k=%d should be rejected", k)
		}
	}
}

func TestFatTreeAllPairsRoutes(t *testing.T) {
	ft, err := BuildFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// Every ToR prefix must be reachable (routed) from every device.
	// ToRs in other pods route via default? No: hosted prefixes are in
	// BGP, so every router has a specific route.
	n := ft.Net
	for _, src := range ft.ToRs {
		for _, dst := range ft.ToRs {
			if src == dst {
				continue
			}
			p := ft.HostPrefix[dst]
			var found bool
			for _, id := range n.Device(src).FIB {
				if n.Rule(id).Match.DstPrefix == p {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s has no route to %v", n.Device(src).Name, p)
			}
		}
	}
}

func TestFatTreeECMPWidths(t *testing.T) {
	ft, err := BuildFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	n := ft.Net
	// A ToR reaching another pod's prefix should ECMP across all its pod
	// aggs (k/2 = 2).
	src := ft.ToRs[0]
	var dst netmodel.DeviceID = -1
	for _, d := range ft.ToRs {
		if ft.PodOf[d] != ft.PodOf[src] {
			dst = d
			break
		}
	}
	p := ft.HostPrefix[dst]
	for _, id := range n.Device(src).FIB {
		r := n.Rule(id)
		if r.Match.DstPrefix == p {
			if len(r.Action.OutIfaces) != 2 {
				t.Errorf("cross-pod ECMP width = %d, want 2", len(r.Action.OutIfaces))
			}
		}
	}
}

func TestBuildRegionalShape(t *testing.T) {
	rg, err := BuildRegional(RegionalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	o := rg.Opts
	if len(rg.ToRs) != o.DCs*o.PodsPerDC*o.ToRsPerPod {
		t.Errorf("tors = %d", len(rg.ToRs))
	}
	if len(rg.Aggs) != o.DCs*o.PodsPerDC*o.AggsPerPod {
		t.Errorf("aggs = %d", len(rg.Aggs))
	}
	if len(rg.Spines) != o.DCs*o.SpinesPerDC {
		t.Errorf("spines = %d", len(rg.Spines))
	}
	if len(rg.Hubs) != o.Hubs || len(rg.WANHubs) != o.WANHubs {
		t.Errorf("hubs = %d wan = %d", len(rg.Hubs), len(rg.WANHubs))
	}
}

func TestRegionalRouteScoping(t *testing.T) {
	rg, err := BuildRegional(RegionalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wan := rg.WANPrefixes[0]
	// Spines and hubs carry wide-area routes; aggs and ToRs don't.
	for _, s := range rg.Spines {
		if rg.RIB.RIB[s][wan] == nil {
			t.Errorf("spine %d missing wide-area route", s)
		}
	}
	for _, h := range rg.Hubs {
		if rg.RIB.RIB[h][wan] == nil {
			t.Errorf("hub %d missing wide-area route", h)
		}
	}
	for _, a := range rg.Aggs {
		if rg.RIB.RIB[a][wan] != nil {
			t.Errorf("agg %d leaked wide-area route", a)
		}
	}
	for _, tor := range rg.ToRs {
		if rg.RIB.RIB[tor][wan] != nil {
			t.Errorf("tor %d leaked wide-area route", tor)
		}
	}
}

func TestRegionalDefaultPlacement(t *testing.T) {
	rg, err := BuildRegional(RegionalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	def := netip.MustParsePrefix("0.0.0.0/0")
	// Every ToR, agg, spine has a default; WAN hubs originate one;
	// interconnect-only hubs have none.
	for _, group := range [][]netmodel.DeviceID{rg.ToRs, rg.Aggs, rg.Spines} {
		for _, d := range group {
			if rg.RIB.RIB[d][def] == nil {
				t.Errorf("device %s missing default", rg.Net.Device(d).Name)
			}
		}
	}
	wanSet := map[netmodel.DeviceID]bool{}
	for _, h := range rg.WANHubs {
		wanSet[h] = true
		if rg.RIB.RIB[h][def] == nil {
			t.Errorf("WAN hub %d missing default", h)
		}
	}
	for _, h := range rg.Hubs {
		if !wanSet[h] && rg.RIB.RIB[h][def] != nil {
			t.Errorf("interconnect hub %d should have no default", h)
		}
	}
}

func TestRegionalCrossDCRoutes(t *testing.T) {
	rg, err := BuildRegional(RegionalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// A ToR in DC0 must have a specific route to a DC1 hosted prefix.
	var src, dst netmodel.DeviceID = -1, -1
	for _, tor := range rg.ToRs {
		if rg.DCOf[tor] == 0 && src == -1 {
			src = tor
		}
		if rg.DCOf[tor] == 1 && dst == -1 {
			dst = tor
		}
	}
	if src == -1 || dst == -1 {
		t.Fatal("need two DCs")
	}
	if rg.RIB.RIB[src][rg.HostPrefix[dst]] == nil {
		t.Error("cross-DC hosted route missing")
	}
}

func TestRegionalConnectedRulesPresent(t *testing.T) {
	rg, err := BuildRegional(RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := rg.Net
	count := 0
	for _, r := range n.Rules {
		if r.Origin == netmodel.OriginConnected {
			count++
		}
	}
	// Two connected rules per link (one per end).
	if want := 2 * n.Stats().Links; count != want {
		t.Errorf("connected rules = %d, want %d", count, want)
	}
}

// TestBuildDeterminism guards rule-ID stability across builds: coverage
// traces and network JSON reference rules by ID, so regenerating the
// same configuration must produce byte-identical networks.
func TestBuildDeterminism(t *testing.T) {
	encode := func(build func() (*netmodel.Network, error)) string {
		t.Helper()
		n, err := build()
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := n.EncodeJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	builds := map[string]func() (*netmodel.Network, error){
		"example": func() (*netmodel.Network, error) {
			ex, err := BuildExample(ExampleOpts{BugNullRoute: true})
			if err != nil {
				return nil, err
			}
			return ex.Net, nil
		},
		"fattree": func() (*netmodel.Network, error) {
			ft, err := BuildFatTree(4)
			if err != nil {
				return nil, err
			}
			return ft.Net, nil
		},
		"regional": func() (*netmodel.Network, error) {
			rg, err := BuildRegional(RegionalOpts{})
			if err != nil {
				return nil, err
			}
			return rg.Net, nil
		},
	}
	for name, build := range builds {
		if encode(build) != encode(build) {
			t.Errorf("%s: two builds differ", name)
		}
	}
}

func TestRegionalSubnetsPerToR(t *testing.T) {
	rg, err := BuildRegional(RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1, SubnetsPerToR: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tor := range rg.ToRs {
		d := rg.Net.Device(tor)
		if len(d.Subnets) != 3 {
			t.Errorf("%s subnets = %d, want 3", d.Name, len(d.Subnets))
		}
		hostPorts := 0
		for _, ifid := range d.Ifaces {
			if rg.Net.Iface(ifid).External {
				hostPorts++
			}
		}
		if hostPorts != 3 {
			t.Errorf("%s host ports = %d, want 3", d.Name, hostPorts)
		}
		// All three subnets are routed from elsewhere.
		other := rg.ToRs[0]
		if other == tor {
			other = rg.ToRs[1]
		}
		for _, p := range d.Subnets {
			if rg.RIB.RIB[other][p] == nil {
				t.Errorf("subnet %v not propagated", p)
			}
		}
	}
	// Canonical prefix maps point at host0.
	tor := rg.ToRs[0]
	if rg.Net.Iface(rg.HostIface[tor]).Name != "host0" {
		t.Error("canonical host iface should be host0")
	}
}

func TestBuildRegionalIPv6(t *testing.T) {
	rg, err := BuildRegional(RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4, IPv6: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := rg.Net
	if n.Family().String() != "ipv6" {
		t.Fatalf("family = %v", n.Family())
	}
	// Link interfaces carry /126s with ::1/::2 ends.
	for _, ifc := range n.Ifaces {
		if ifc.Peer == netmodel.NoIface || !ifc.Addr.IsValid() {
			continue
		}
		if ifc.Addr.Bits() != 126 {
			t.Fatalf("link addr %v is not a /126", ifc.Addr)
		}
		low := ifc.Addr.Addr().As16()[15] & 0x3
		if low != 1 && low != 2 {
			t.Fatalf("link end %v not ::1/::2 of its /126", ifc.Addr)
		}
	}
	// Default route is ::/0 on every ToR.
	def := netip.MustParsePrefix("::/0")
	for _, tor := range rg.ToRs {
		if rg.RIB.RIB[tor][def] == nil {
			t.Errorf("tor missing ::/0")
		}
	}
	// WAN prefixes are /48s under 2001:db8::/32.
	for _, p := range rg.WANPrefixes {
		if p.Bits() != 48 || p.Addr().As16()[0] != 0x20 {
			t.Errorf("wan prefix %v", p)
		}
	}
	// Host prefixes are /64s, routed across the network.
	other := rg.ToRs[1]
	if p := rg.HostPrefix[rg.ToRs[0]]; p.Bits() != 64 || rg.RIB.RIB[other][p] == nil {
		t.Errorf("host prefix %v not routed", p)
	}
}

func TestRegionalIPv6SuitePasses(t *testing.T) {
	rg, err := BuildRegional(RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4, IPv6: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exercised via testkit in its own package tests; here just verify the
	// forwarding state is sane end-to-end: a symbolic membership check on
	// one host prefix match set.
	tor := rg.ToRs[0]
	r, ok := rg.Net.FIBRuleFor(tor, rg.HostPrefix[rg.ToRs[1]])
	if !ok {
		t.Fatal("missing cross-ToR v6 route")
	}
	if r.MatchSet().IsEmpty() {
		t.Fatal("empty v6 match set")
	}
	if !rg.Net.Space.DstPrefix(rg.HostPrefix[rg.ToRs[1]]).Contains(r.MatchSet()) {
		t.Fatal("v6 match set exceeds its prefix")
	}
}
