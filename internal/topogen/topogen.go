// Package topogen builds the three network families used in the paper:
//
//   - Example: the §2 / Figure 1 data-center network (borders, spines,
//     leaves) with the optional null-routed static default on border B2
//     that causes the motivating outage.
//   - FatTree: k-ary fat-trees [Al-Fares et al.] used for the §8
//     performance benchmarks.
//   - Regional: the §7.1 case-study network — a region of Clos data
//     centers (ToR/Agg pods, DC spines) interconnected by regional hub
//     routers, some of which face the WAN.
//
// All generators wire the topology, configure the control plane per §7.1
// (eBGP with ECMP, static default routes pointing north, connected /31s,
// redistributed loopbacks and host subnets, scoped wide-area routes), run
// the BGP simulator, and return a frozen network with match sets computed.
package topogen

import (
	"fmt"
	"net/netip"

	"yardstick/internal/bgp"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
)

// family maps the IPv6 flag to an hdr family.
func family(v6 bool) hdr.Family {
	if v6 {
		return hdr.V6
	}
	return hdr.V4
}

// alloc hands out non-overlapping address blocks for either family.
type alloc struct {
	v6   bool
	next uint32 // next free address in the v4 link space
	lb   uint32 // next free v4 loopback
	n6   uint64 // v6 link counter
	lb6  uint64 // v6 loopback counter
}

func newAlloc() *alloc {
	return &alloc{
		next: ipToU32(netip.MustParseAddr("10.128.0.0")),
		lb:   ipToU32(netip.MustParseAddr("172.16.0.0")),
	}
}

func newAllocFamily(v6 bool) *alloc {
	a := newAlloc()
	a.v6 = v6
	return a
}

// v6At builds an IPv6 address from a 4-byte prefix, a 16-bit index in
// bytes 4-5, and a 64-bit value in the low 8 bytes.
func v6At(b0, b1, b2, b3 byte, idx uint16, low uint64) netip.Addr {
	var b [16]byte
	b[0], b[1], b[2], b[3] = b0, b1, b2, b3
	b[4] = byte(idx >> 8)
	b[5] = byte(idx)
	for i := 0; i < 8; i++ {
		b[8+i] = byte(low >> (56 - 8*i))
	}
	return netip.AddrFrom16(b)
}

func ipToU32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func u32ToIP(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// linkSubnet returns the next point-to-point subnet: a /31 for IPv4 or a
// /126 for IPv6 (the paper's §7.2 dual-stack convention).
func (a *alloc) linkSubnet() netip.Prefix {
	if a.v6 {
		p := netip.PrefixFrom(v6At(0xfd, 0, 0, 0xff, 0, a.n6*4), 126)
		a.n6++
		return p
	}
	p := netip.PrefixFrom(u32ToIP(a.next), 31)
	a.next += 2
	return p
}

// loopback returns the next loopback prefix (/32 or /128).
func (a *alloc) loopback() netip.Prefix {
	if a.v6 {
		p := netip.PrefixFrom(v6At(0xfd, 0, 0, 0x99, 0, a.lb6), 128)
		a.lb6++
		return p
	}
	p := netip.PrefixFrom(u32ToIP(a.lb), 32)
	a.lb++
	return p
}

// addLoopback assigns a fresh loopback to dev and returns its origination.
func (a *alloc) addLoopback(n *netmodel.Network, dev netmodel.DeviceID) bgp.Origination {
	lb := a.loopback()
	n.Device(dev).Loopbacks = append(n.Device(dev).Loopbacks, lb)
	return bgp.Origination{Device: dev, Prefix: lb, Origin: netmodel.OriginInternal, EdgeIface: netmodel.NoIface}
}

// ---------------------------------------------------------------------------
// Figure 1 example network
// ---------------------------------------------------------------------------

// ExampleOpts configures the Figure 1 network.
type ExampleOpts struct {
	// BugNullRoute installs the null-routed static default on border B2
	// (the root cause of the §2 outage).
	BugNullRoute bool
	// OmitB1 removes border B1, simulating its failure.
	OmitB1 bool
	// Leaves is the number of leaf routers (default 3, as drawn).
	Leaves int
}

// Example is the built Figure 1 network.
type Example struct {
	Net          *netmodel.Network
	RIB          *bgp.Result
	Borders      []netmodel.DeviceID
	Spines       []netmodel.DeviceID
	Leaves       []netmodel.DeviceID
	LeafPrefix   map[netmodel.DeviceID]netip.Prefix
	LeafIface    map[netmodel.DeviceID]netmodel.IfaceID // host-facing edge
	WANIface     map[netmodel.DeviceID]netmodel.IfaceID // border WAN edge
	DefaultDst   netip.Prefix
	DCSuperblock netip.Prefix // covers all leaf prefixes
}

// BuildExample constructs the §2 example: two borders, two spines, and a
// row of leaves; the WAN announces the default route at the borders.
func BuildExample(opts ExampleOpts) (*Example, error) {
	if opts.Leaves == 0 {
		opts.Leaves = 3
	}
	if opts.Leaves < 1 || opts.Leaves > 200 {
		return nil, fmt.Errorf("topogen: leaves = %d out of range", opts.Leaves)
	}
	n := netmodel.New()
	al := newAlloc()
	ex := &Example{
		Net:          n,
		LeafPrefix:   make(map[netmodel.DeviceID]netip.Prefix),
		LeafIface:    make(map[netmodel.DeviceID]netmodel.IfaceID),
		WANIface:     make(map[netmodel.DeviceID]netmodel.IfaceID),
		DefaultDst:   netip.MustParsePrefix("0.0.0.0/0"),
		DCSuperblock: netip.MustParsePrefix("10.0.0.0/16"),
	}

	asn := uint32(65000)
	nextASN := func() uint32 { asn++; return asn }

	borders := []string{"b1", "b2"}
	if opts.OmitB1 {
		borders = []string{"b2"}
	}
	for _, name := range borders {
		ex.Borders = append(ex.Borders, n.AddDevice(name, netmodel.RoleBorder, nextASN()))
	}
	for i := 0; i < 2; i++ {
		ex.Spines = append(ex.Spines, n.AddDevice(fmt.Sprintf("s%d", i+1), netmodel.RoleSpine, nextASN()))
	}
	for i := 0; i < opts.Leaves; i++ {
		ex.Leaves = append(ex.Leaves, n.AddDevice(fmt.Sprintf("l%d", i+1), netmodel.RoleLeaf, nextASN()))
	}

	// Full mesh between adjacent layers.
	for _, s := range ex.Spines {
		for _, b := range ex.Borders {
			n.Connect(s, b, al.linkSubnet())
		}
		for _, l := range ex.Leaves {
			n.Connect(l, s, al.linkSubnet())
		}
	}

	var origins []bgp.Origination
	var statics []bgp.StaticRoute

	// Borders: WAN edge interface; the WAN announces the default there.
	for _, b := range ex.Borders {
		wan := n.AddEdgeIface(b, "wan0", netip.Prefix{})
		ex.WANIface[b] = wan
		origins = append(origins, bgp.Origination{
			Device: b, Prefix: ex.DefaultDst, Origin: netmodel.OriginDefault, EdgeIface: wan,
		})
	}

	// Leaves: hosted prefixes 10.0.i.0/24 within the DC superblock.
	for i, l := range ex.Leaves {
		p := netip.PrefixFrom(u32ToIP(ipToU32(ex.DCSuperblock.Addr())+uint32(i)<<8), 24)
		host := n.AddEdgeIface(l, "host0", p)
		ex.LeafPrefix[l] = p
		ex.LeafIface[l] = host
		n.Device(l).Subnets = append(n.Device(l).Subnets, p)
		origins = append(origins, bgp.Origination{
			Device: l, Prefix: p, Origin: netmodel.OriginInternal, EdgeIface: host,
		})
	}

	// Loopbacks everywhere, redistributed into BGP.
	for _, d := range n.Devices {
		origins = append(origins, al.addLoopback(n, d.ID))
	}

	// The bug: B2's default is a null-routed static, so B2 never
	// propagates the default route to the spines.
	if opts.BugNullRoute {
		b2, ok := n.DeviceByName("b2")
		if !ok {
			return nil, fmt.Errorf("topogen: b2 missing")
		}
		statics = append(statics, bgp.StaticRoute{
			Device: b2.ID, Prefix: ex.DefaultDst, Null: true, Origin: netmodel.OriginDefault,
		})
	}

	rib, err := bgp.Run(bgp.Config{Net: n, Origins: origins, Statics: statics})
	if err != nil {
		return nil, err
	}
	ex.RIB = rib
	n.ComputeMatchSets()
	return ex, nil
}

// ---------------------------------------------------------------------------
// Fat-tree (§8 benchmarks)
// ---------------------------------------------------------------------------

// FatTree is a built k-ary fat-tree.
type FatTree struct {
	Net        *netmodel.Network
	K          int
	ToRs       []netmodel.DeviceID // k²/2 edge switches
	Aggs       []netmodel.DeviceID // k²/2 aggregation switches
	Cores      []netmodel.DeviceID // (k/2)² core switches
	PodOf      map[netmodel.DeviceID]int
	HostPrefix map[netmodel.DeviceID]netip.Prefix // per ToR
	HostIface  map[netmodel.DeviceID]netmodel.IfaceID
}

// BuildFatTree constructs a k-ary fat-tree with one hosted /24 per ToR,
// routing per §7.1: eBGP+ECMP for hosted prefixes and loopbacks, static
// default routes pointing at the next layer up (ToR→pod aggs, agg→its
// cores), no default at the core layer.
func BuildFatTree(k int) (*FatTree, error) {
	if k < 2 || k%2 != 0 || k > 88 {
		return nil, fmt.Errorf("topogen: fat-tree k = %d must be even and in [2,88]", k)
	}
	n := netmodel.New()
	al := newAlloc()
	ft := &FatTree{
		Net:        n,
		K:          k,
		PodOf:      make(map[netmodel.DeviceID]int),
		HostPrefix: make(map[netmodel.DeviceID]netip.Prefix),
		HostIface:  make(map[netmodel.DeviceID]netmodel.IfaceID),
	}
	h := k / 2
	asn := uint32(64512)
	nextASN := func() uint32 { asn++; return asn }

	// Devices.
	tors := make([][]netmodel.DeviceID, k) // [pod][i]
	aggs := make([][]netmodel.DeviceID, k)
	for p := 0; p < k; p++ {
		for i := 0; i < h; i++ {
			t := n.AddDevice(fmt.Sprintf("p%d-tor%d", p, i), netmodel.RoleToR, nextASN())
			tors[p] = append(tors[p], t)
			ft.ToRs = append(ft.ToRs, t)
			ft.PodOf[t] = p
		}
		for i := 0; i < h; i++ {
			a := n.AddDevice(fmt.Sprintf("p%d-agg%d", p, i), netmodel.RoleAgg, nextASN())
			aggs[p] = append(aggs[p], a)
			ft.Aggs = append(ft.Aggs, a)
			ft.PodOf[a] = p
		}
	}
	cores := make([][]netmodel.DeviceID, h) // [group][j]
	for g := 0; g < h; g++ {
		for j := 0; j < h; j++ {
			c := n.AddDevice(fmt.Sprintf("core%d-%d", g, j), netmodel.RoleCore, nextASN())
			cores[g] = append(cores[g], c)
			ft.Cores = append(ft.Cores, c)
			ft.PodOf[c] = -1
		}
	}

	// Links: complete bipartite ToR×Agg within each pod; agg i of every
	// pod connects to all cores in group i.
	for p := 0; p < k; p++ {
		for _, t := range tors[p] {
			for _, a := range aggs[p] {
				n.Connect(t, a, al.linkSubnet())
			}
		}
		for i, a := range aggs[p] {
			for _, c := range cores[i] {
				n.Connect(a, c, al.linkSubnet())
			}
		}
	}

	var origins []bgp.Origination
	var statics []bgp.StaticRoute

	// Hosted prefixes: 10.p.i.0/24 per ToR.
	for p := 0; p < k; p++ {
		for i, t := range tors[p] {
			pref := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(p), byte(i), 0}), 24)
			host := n.AddEdgeIface(t, "host0", pref)
			ft.HostPrefix[t] = pref
			ft.HostIface[t] = host
			n.Device(t).Subnets = append(n.Device(t).Subnets, pref)
			origins = append(origins, bgp.Origination{
				Device: t, Prefix: pref, Origin: netmodel.OriginInternal, EdgeIface: host,
			})
		}
	}
	// Loopbacks everywhere.
	for _, d := range n.Devices {
		origins = append(origins, al.addLoopback(n, d.ID))
	}
	// Static defaults pointing north.
	def := netip.MustParsePrefix("0.0.0.0/0")
	for p := 0; p < k; p++ {
		for _, t := range tors[p] {
			statics = append(statics, bgp.StaticRoute{
				Device: t, Prefix: def, NextHops: append([]netmodel.DeviceID(nil), aggs[p]...),
				Origin: netmodel.OriginDefault,
			})
		}
		for i, a := range aggs[p] {
			statics = append(statics, bgp.StaticRoute{
				Device: a, Prefix: def, NextHops: append([]netmodel.DeviceID(nil), cores[i]...),
				Origin: netmodel.OriginDefault,
			})
		}
	}

	if _, err := bgp.Run(bgp.Config{Net: n, Origins: origins, Statics: statics}); err != nil {
		return nil, err
	}
	n.ComputeMatchSets()
	return ft, nil
}

// FatTreeSize returns the number of routers in a k-ary fat-tree without
// building it: 5k²/4.
func FatTreeSize(k int) int { return 5 * k * k / 4 }

// ---------------------------------------------------------------------------
// Regional case-study network (§7.1)
// ---------------------------------------------------------------------------

// RegionalOpts sizes the case-study network.
type RegionalOpts struct {
	DCs         int // data centers in the region (default 2)
	PodsPerDC   int // pods per DC (default 2)
	ToRsPerPod  int // ToRs per pod (default 4)
	AggsPerPod  int // aggregation routers per pod (default 2)
	SpinesPerDC int // spine routers per DC (default 4)
	Hubs        int // regional hub routers (default 4)
	WANHubs     int // hubs with WAN connectivity (default 3; < Hubs leaves
	// interconnect-only hubs that legitimately lack a default route)
	WANPrefixes int // wide-area prefixes announced by the WAN (default 16)
	// SubnetsPerToR is the number of host-facing ports, each with its
	// own /24, per ToR (default 1). Production ToRs carry many host
	// ports — the reason Figure 6d's ToR interface coverage sits near
	// 25%; raise this for that fidelity.
	SubnetsPerToR int
	// IPv6 builds the IPv6 twin of the network (the case-study network
	// is dual-stack, §7.2): /126 point-to-point links, /128 loopbacks,
	// /64 host subnets, ::/0 default, /48 wide-area prefixes. Build one
	// network per family and analyze each in its own header space.
	IPv6 bool
}

func (o *RegionalOpts) fill() {
	if o.DCs == 0 {
		o.DCs = 2
	}
	if o.PodsPerDC == 0 {
		o.PodsPerDC = 2
	}
	if o.ToRsPerPod == 0 {
		o.ToRsPerPod = 4
	}
	if o.AggsPerPod == 0 {
		o.AggsPerPod = 2
	}
	if o.SpinesPerDC == 0 {
		o.SpinesPerDC = 4
	}
	if o.Hubs == 0 {
		o.Hubs = 4
	}
	if o.WANHubs == 0 {
		o.WANHubs = 3
	}
	if o.WANPrefixes == 0 {
		o.WANPrefixes = 16
	}
	if o.SubnetsPerToR == 0 {
		o.SubnetsPerToR = 1
	}
}

// Regional is the built case-study network.
type Regional struct {
	Net         *netmodel.Network
	RIB         *bgp.Result
	ToRs        []netmodel.DeviceID
	Aggs        []netmodel.DeviceID
	Spines      []netmodel.DeviceID
	Hubs        []netmodel.DeviceID
	WANHubs     []netmodel.DeviceID
	HostPrefix  map[netmodel.DeviceID]netip.Prefix
	HostIface   map[netmodel.DeviceID]netmodel.IfaceID
	WANIface    map[netmodel.DeviceID]netmodel.IfaceID
	WANPrefixes []netip.Prefix
	DCOf        map[netmodel.DeviceID]int
	PodAggs     map[netmodel.DeviceID][]netmodel.DeviceID // ToR → its pod's aggs
	Opts        RegionalOpts

	// Control-plane inputs the network was converged from, for replaying
	// churn (bgp.Replay) against the same topology and policy.
	Origins []bgp.Origination
	Statics []bgp.StaticRoute
	Export  bgp.ExportFilter
}

// BuildRegional constructs the §7.1 regional network: per DC, pods of ToRs
// and aggregation routers, a DC spine layer, and a shared regional hub
// layer; WAN-facing hubs originate the default route and the wide-area
// prefixes. Wide-area routes are export-filtered so they reach only the
// hub and spine layers (§7.2 gap 3). Every router below the hub layer has
// a static default pointing at its northern neighbors (WAN-facing hubs for
// spines).
func BuildRegional(opts RegionalOpts) (*Regional, error) {
	opts.fill()
	if opts.WANHubs > opts.Hubs {
		return nil, fmt.Errorf("topogen: WANHubs %d > Hubs %d", opts.WANHubs, opts.Hubs)
	}
	if opts.DCs*opts.PodsPerDC*opts.ToRsPerPod > 16384 {
		return nil, fmt.Errorf("topogen: regional network too large")
	}
	n := netmodel.NewFamily(family(opts.IPv6))
	al := newAllocFamily(opts.IPv6)
	rg := &Regional{
		Net:        n,
		HostPrefix: make(map[netmodel.DeviceID]netip.Prefix),
		HostIface:  make(map[netmodel.DeviceID]netmodel.IfaceID),
		WANIface:   make(map[netmodel.DeviceID]netmodel.IfaceID),
		DCOf:       make(map[netmodel.DeviceID]int),
		PodAggs:    make(map[netmodel.DeviceID][]netmodel.DeviceID),
		Opts:       opts,
	}
	asn := uint32(64512)
	nextASN := func() uint32 { asn++; return asn }

	// Hubs.
	for i := 0; i < opts.Hubs; i++ {
		hub := n.AddDevice(fmt.Sprintf("hub%d", i), netmodel.RoleHub, nextASN())
		rg.Hubs = append(rg.Hubs, hub)
		rg.DCOf[hub] = -1
		if i < opts.WANHubs {
			rg.WANHubs = append(rg.WANHubs, hub)
		}
	}

	var origins []bgp.Origination
	var statics []bgp.StaticRoute
	def := netip.MustParsePrefix("0.0.0.0/0")
	if opts.IPv6 {
		def = netip.MustParsePrefix("::/0")
	}

	hostCounter := 0
	for dc := 0; dc < opts.DCs; dc++ {
		// Spines for this DC.
		var spines []netmodel.DeviceID
		for s := 0; s < opts.SpinesPerDC; s++ {
			sp := n.AddDevice(fmt.Sprintf("dc%d-spine%d", dc, s), netmodel.RoleSpine, nextASN())
			spines = append(spines, sp)
			rg.Spines = append(rg.Spines, sp)
			rg.DCOf[sp] = dc
			for _, hub := range rg.Hubs {
				n.Connect(sp, hub, al.linkSubnet())
			}
			statics = append(statics, bgp.StaticRoute{
				Device: sp, Prefix: def, NextHops: append([]netmodel.DeviceID(nil), rg.Hubs...),
				Origin: netmodel.OriginDefault,
			})
		}
		for pod := 0; pod < opts.PodsPerDC; pod++ {
			var podAggs []netmodel.DeviceID
			for a := 0; a < opts.AggsPerPod; a++ {
				ag := n.AddDevice(fmt.Sprintf("dc%d-p%d-agg%d", dc, pod, a), netmodel.RoleAgg, nextASN())
				podAggs = append(podAggs, ag)
				rg.Aggs = append(rg.Aggs, ag)
				rg.DCOf[ag] = dc
				for _, sp := range spines {
					n.Connect(ag, sp, al.linkSubnet())
				}
				statics = append(statics, bgp.StaticRoute{
					Device: ag, Prefix: def, NextHops: append([]netmodel.DeviceID(nil), spines...),
					Origin: netmodel.OriginDefault,
				})
			}
			for tr := 0; tr < opts.ToRsPerPod; tr++ {
				tor := n.AddDevice(fmt.Sprintf("dc%d-p%d-tor%d", dc, pod, tr), netmodel.RoleToR, nextASN())
				rg.ToRs = append(rg.ToRs, tor)
				rg.DCOf[tor] = dc
				rg.PodAggs[tor] = podAggs
				for _, ag := range podAggs {
					n.Connect(tor, ag, al.linkSubnet())
				}
				statics = append(statics, bgp.StaticRoute{
					Device: tor, Prefix: def, NextHops: append([]netmodel.DeviceID(nil), podAggs...),
					Origin: netmodel.OriginDefault,
				})
				// Hosted /24s within 10.0.0.0/10 (below the 10.128/9
				// link space), one per host-facing port. The first is
				// the ToR's canonical prefix in HostPrefix/HostIface.
				for s := 0; s < opts.SubnetsPerToR; s++ {
					pref := netip.PrefixFrom(u32ToIP(ipToU32(netip.MustParseAddr("10.0.0.0"))+uint32(hostCounter)<<8), 24)
					if opts.IPv6 {
						pref = netip.PrefixFrom(v6At(0xfd, 0, 0, 1, uint16(hostCounter), 0), 64)
					}
					hostCounter++
					host := n.AddEdgeIface(tor, fmt.Sprintf("host%d", s), pref)
					if s == 0 {
						rg.HostPrefix[tor] = pref
						rg.HostIface[tor] = host
					}
					n.Device(tor).Subnets = append(n.Device(tor).Subnets, pref)
					origins = append(origins, bgp.Origination{
						Device: tor, Prefix: pref, Origin: netmodel.OriginInternal, EdgeIface: host,
					})
				}
			}
		}
	}

	// Loopbacks everywhere.
	for _, d := range n.Devices {
		origins = append(origins, al.addLoopback(n, d.ID))
	}

	// WAN-facing hubs: default route and wide-area prefixes out the WAN
	// edge.
	for _, hub := range rg.WANHubs {
		wan := n.AddEdgeIface(hub, "wan0", netip.Prefix{})
		rg.WANIface[hub] = wan
		origins = append(origins, bgp.Origination{
			Device: hub, Prefix: def, Origin: netmodel.OriginDefault, EdgeIface: wan,
		})
	}
	for i := 0; i < opts.WANPrefixes; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{8, byte(i), 0, 0}), 16)
		if opts.IPv6 {
			p = netip.PrefixFrom(v6At(0x20, 0x01, 0x0d, 0xb8, uint16(i), 0), 48)
		}
		rg.WANPrefixes = append(rg.WANPrefixes, p)
		for _, hub := range rg.WANHubs {
			origins = append(origins, bgp.Origination{
				Device: hub, Prefix: p, Origin: netmodel.OriginWideArea, EdgeIface: rg.WANIface[hub],
			})
		}
	}

	// Wide-area routes are advertised to the regional hub and spine
	// layers but not leaked into pods (§7.2).
	export := func(from, to *netmodel.Device, rt *bgp.Route) bool {
		if rt.Origin == netmodel.OriginWideArea &&
			(to.Role == netmodel.RoleAgg || to.Role == netmodel.RoleToR) {
			return false
		}
		return true
	}

	rg.Origins = origins
	rg.Statics = statics
	rg.Export = export
	rib, err := bgp.Run(bgp.Config{Net: n, Origins: origins, Statics: statics, Export: export})
	if err != nil {
		return nil, err
	}
	rg.RIB = rib
	n.ComputeMatchSets()
	return rg, nil
}
