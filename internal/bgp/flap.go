package bgp

import (
	"fmt"
	"math/rand"

	"yardstick/internal/netmodel"
)

// Flap replay: deterministic withdraw/re-announce schedules over a
// configuration's originations, replayed into fresh forwarding state per
// step. This is the churn workload of the incremental-coverage scenario
// (ROADMAP "Incremental coverage under churn"): each event toggles one
// origination, the control plane re-converges over a clone of the
// topology, and internal/delta.Diff turns consecutive states into
// rule-level delta documents — a realistic, reproducible delta stream.

// FlapEvent toggles one origination. Up reports the origination's state
// *after* the event (false = withdrawn).
type FlapEvent struct {
	Origin int  `json:"origin"` // index into Config.Origins
	Up     bool `json:"up"`
}

// GenFlaps returns a deterministic schedule of n flap events over
// origins originations: each event picks an origination with the seeded
// generator and toggles it, biased two-to-one toward re-announcing when
// anything is down (so the network keeps oscillating around its
// converged state instead of draining to nothing). The same seed always
// yields the same schedule.
func GenFlaps(seed int64, n, origins int) []FlapEvent {
	if origins <= 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	down := make(map[int]bool)
	var downList []int
	events := make([]FlapEvent, 0, n)
	for len(events) < n {
		if len(downList) > 0 && rng.Intn(3) > 0 {
			// Re-announce a random withdrawn origination.
			i := rng.Intn(len(downList))
			o := downList[i]
			downList[i] = downList[len(downList)-1]
			downList = downList[:len(downList)-1]
			delete(down, o)
			events = append(events, FlapEvent{Origin: o, Up: true})
			continue
		}
		o := rng.Intn(origins)
		if down[o] {
			continue
		}
		down[o] = true
		downList = append(downList, o)
		events = append(events, FlapEvent{Origin: o, Up: false})
	}
	return events
}

// Replay maintains origination up/down state for a configuration and
// rebuilds converged forwarding state on demand. The configuration's
// network is used only as the topology source (it may be frozen); every
// Build converges into a fresh CloneTopology.
type Replay struct {
	cfg Config
	up  []bool
}

// NewReplay starts a replay with every origination announced.
func NewReplay(cfg Config) *Replay {
	up := make([]bool, len(cfg.Origins))
	for i := range up {
		up[i] = true
	}
	return &Replay{cfg: cfg, up: up}
}

// Toggle applies one event to the origination state.
func (r *Replay) Toggle(ev FlapEvent) error {
	if ev.Origin < 0 || ev.Origin >= len(r.up) {
		return fmt.Errorf("bgp: flap event origin %d out of range", ev.Origin)
	}
	r.up[ev.Origin] = ev.Up
	return nil
}

// Up reports how many originations are currently announced.
func (r *Replay) Up() int {
	n := 0
	for _, u := range r.up {
		if u {
			n++
		}
	}
	return n
}

// Build converges the control plane for the current origination state
// into a fresh clone of the topology and returns the resulting network
// with its forwarding state installed but match sets *not* computed —
// diffing against a live network needs only the rule definitions, and
// the caller decides whether the clone's symbolic state is ever needed.
func (r *Replay) Build() (*netmodel.Network, error) {
	clone := r.cfg.Net.CloneTopology()
	active := make([]Origination, 0, len(r.cfg.Origins))
	for i, o := range r.cfg.Origins {
		if r.up[i] {
			active = append(active, o)
		}
	}
	_, err := Run(Config{
		Net:     clone,
		Statics: r.cfg.Statics,
		Origins: active,
		Export:  r.cfg.Export,
	})
	if err != nil {
		return nil, fmt.Errorf("bgp: flap replay convergence: %w", err)
	}
	return clone, nil
}
