package bgp

import (
	"testing"

	"yardstick/internal/core"
	"yardstick/internal/netmodel"
)

// flapConfig builds the line topology with two originations: a default
// at one end and an internal prefix at the other.
func flapConfig(t *testing.T) (Config, [3]netmodel.DeviceID) {
	t.Helper()
	n, ds := line(t)
	return Config{
		Net: n,
		Origins: []Origination{
			{Device: ds[0], Prefix: pfx(t, "10.1.0.0/24"), Origin: netmodel.OriginInternal, EdgeIface: netmodel.NoIface},
			{Device: ds[2], Prefix: pfx(t, "0.0.0.0/0"), Origin: netmodel.OriginDefault, EdgeIface: netmodel.NoIface},
		},
	}, ds
}

func fingerprint(t *testing.T, n *netmodel.Network) string {
	t.Helper()
	fp, err := core.Fingerprint(n)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestGenFlapsDeterministic(t *testing.T) {
	a := GenFlaps(7, 50, 4)
	b := GenFlaps(7, 50, 4)
	if len(a) != 50 {
		t.Fatalf("len = %d, want 50", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs between identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := GenFlaps(8, 50, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
	// The schedule is always consistent: withdrawals target announced
	// originations, re-announcements target withdrawn ones.
	up := map[int]bool{}
	for i, ev := range a {
		if ev.Origin < 0 || ev.Origin >= 4 {
			t.Fatalf("event %d origin %d out of range", i, ev.Origin)
		}
		wasUp := !up[ev.Origin] // up map tracks DOWN origins
		if ev.Up == wasUp {
			t.Fatalf("event %d is a no-op toggle: %+v", i, ev)
		}
		up[ev.Origin] = !ev.Up
	}
}

func TestGenFlapsDegenerate(t *testing.T) {
	if GenFlaps(1, 0, 4) != nil || GenFlaps(1, 10, 0) != nil {
		t.Error("degenerate inputs must yield no schedule")
	}
	// A single origination still oscillates: down, up, down, up, …
	evs := GenFlaps(3, 6, 1)
	for i, ev := range evs {
		if ev.Origin != 0 || ev.Up != (i%2 == 1) {
			t.Fatalf("single-origin schedule broken at %d: %+v", i, ev)
		}
	}
}

func TestReplayToggleRange(t *testing.T) {
	cfg, _ := flapConfig(t)
	r := NewReplay(cfg)
	if err := r.Toggle(FlapEvent{Origin: 2, Up: false}); err == nil {
		t.Error("out-of-range origin accepted")
	}
	if err := r.Toggle(FlapEvent{Origin: -1, Up: false}); err == nil {
		t.Error("negative origin accepted")
	}
	if r.Up() != 2 {
		t.Errorf("Up() = %d after rejected toggles, want 2", r.Up())
	}
}

func TestReplayBuildAllUpMatchesDirectRun(t *testing.T) {
	cfg, _ := flapConfig(t)
	// Converge the base network directly with the same inputs.
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	r := NewReplay(Config{Net: cfg.Net, Origins: cfg.Origins, Statics: cfg.Statics, Export: cfg.Export})
	built, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built == cfg.Net {
		t.Fatal("Build must converge into a clone, not the source network")
	}
	if got, want := fingerprint(t, built), fingerprint(t, cfg.Net); got != want {
		t.Errorf("all-up replay diverges from direct convergence: %s vs %s", got, want)
	}
}

func TestReplayWithdrawAndReannounce(t *testing.T) {
	cfg, ds := flapConfig(t)
	r := NewReplay(cfg)
	base, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	baseFP := fingerprint(t, base)

	// Withdraw the internal prefix: the far end loses its route.
	if err := r.Toggle(FlapEvent{Origin: 0, Up: false}); err != nil {
		t.Fatal(err)
	}
	if r.Up() != 1 {
		t.Fatalf("Up() = %d, want 1", r.Up())
	}
	down, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range down.Device(ds[2]).FIB {
		if down.Rule(id).Match.DstPrefix == pfx(t, "10.1.0.0/24") {
			t.Fatal("withdrawn prefix still installed at the far end")
		}
	}
	if fingerprint(t, down) == baseFP {
		t.Error("withdrawal did not change the forwarding state")
	}

	// Re-announce: the state returns to the base, bit for bit.
	if err := r.Toggle(FlapEvent{Origin: 0, Up: true}); err != nil {
		t.Fatal(err)
	}
	backUp, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, backUp) != baseFP {
		t.Error("re-announcement did not restore the base forwarding state")
	}
}

// TestReplayStreamDeterministic replays the same generated schedule
// twice and checks the per-step forwarding states agree exactly.
func TestReplayStreamDeterministic(t *testing.T) {
	evs := GenFlaps(11, 8, 2)
	var fps [2][]string
	for run := 0; run < 2; run++ {
		cfg, _ := flapConfig(t)
		r := NewReplay(cfg)
		for _, ev := range evs {
			if err := r.Toggle(ev); err != nil {
				t.Fatal(err)
			}
			n, err := r.Build()
			if err != nil {
				t.Fatal(err)
			}
			fps[run] = append(fps[run], fingerprint(t, n))
		}
	}
	for i := range fps[0] {
		if fps[0][i] != fps[1][i] {
			t.Fatalf("step %d fingerprints differ across identical replays", i)
		}
	}
}
