// Package bgp computes network forwarding state with an eBGP-style
// control-plane simulator, standing in for the in-house simulator the paper
// uses to derive post-change FIBs (§7.1).
//
// The model follows the paper's case-study network design: every router
// speaks eBGP with its neighbors, best path is shortest AS-path with ECMP
// multipath across equal-cost neighbors (allow-as-in permits ToR-Agg-ToR
// style paths, so path *length* is the only selector), prefixes are
// originated at their owners (host subnets at ToRs, loopbacks everywhere,
// default and wide-area routes at the WAN edge), connected /31s are
// installed locally but never redistributed, static routes override BGP and
// a null-routed static suppresses propagation of that prefix (the root
// cause of the paper's §2 outage example), and per-session export filters
// control route scope (wide-area routes stay in the upper layers, §7.2).
//
// Run installs the resulting FIB rules into the netmodel.Network and leaves
// match-set computation to the caller.
package bgp

import (
	"fmt"
	"net/netip"
	"sort"

	"yardstick/internal/netmodel"
)

// StaticRoute is a per-device static route. Statics take precedence over
// BGP-learned routes for the same prefix and are never advertised; a
// null-routed static additionally blackholes the traffic.
type StaticRoute struct {
	Device   netmodel.DeviceID
	Prefix   netip.Prefix
	NextHops []netmodel.DeviceID // neighbor devices; ignored when Null
	Null     bool
	Origin   netmodel.RouteOrigin // origin recorded on the FIB rule
}

// Origination injects a prefix into BGP at a device. When EdgeIface is a
// valid interface the originating device forwards matching packets out of
// it (host subnets, WAN uplinks); otherwise the packets are delivered
// locally (loopbacks).
type Origination struct {
	Device    netmodel.DeviceID
	Prefix    netip.Prefix
	Origin    netmodel.RouteOrigin
	EdgeIface netmodel.IfaceID // netmodel.NoIface = deliver locally
}

// Route is a BGP RIB entry as seen by export filters and by callers
// inspecting Result.
type Route struct {
	Prefix   netip.Prefix
	Origin   netmodel.RouteOrigin
	Dist     int // AS-path length from the nearest originator
	NextHops []netmodel.DeviceID
}

// ExportFilter decides whether the device from advertises rt to the device
// to. A nil filter permits everything.
type ExportFilter func(from, to *netmodel.Device, rt *Route) bool

// Config drives one simulation run.
type Config struct {
	Net     *netmodel.Network
	Statics []StaticRoute
	Origins []Origination
	Export  ExportFilter
}

// Result reports the converged RIBs: Result.RIB[device][prefix].
type Result struct {
	RIB []map[netip.Prefix]*Route
}

// ribEntry is the mutable per-device per-prefix state during iteration.
type ribEntry struct {
	dist     int
	origin   netmodel.RouteOrigin
	nexthops map[netmodel.DeviceID]bool
	// origination bookkeeping
	originates bool
	edgeIface  netmodel.IfaceID
}

// Run simulates the control plane to a fixpoint and installs FIB rules
// (BGP routes, statics, connected /31s, loopbacks) into cfg.Net. The
// caller must invoke ComputeMatchSets afterwards. Run returns the
// converged RIBs for inspection.
func Run(cfg Config) (*Result, error) {
	net := cfg.Net
	if net == nil {
		return nil, fmt.Errorf("bgp: Config.Net is nil")
	}
	if net.MatchSetsComputed() {
		return nil, fmt.Errorf("bgp: network is frozen (match sets already computed)")
	}
	nDev := len(net.Devices)

	// Statics indexed by device and prefix: these devices neither select
	// nor advertise BGP routes for the prefix.
	staticAt := make([]map[netip.Prefix]*StaticRoute, nDev)
	for i := range staticAt {
		staticAt[i] = make(map[netip.Prefix]*StaticRoute)
	}
	for i := range cfg.Statics {
		s := &cfg.Statics[i]
		if !s.Prefix.IsValid() {
			return nil, fmt.Errorf("bgp: static route on %s has invalid prefix", net.Device(s.Device).Name)
		}
		if _, dup := staticAt[s.Device][s.Prefix.Masked()]; dup {
			return nil, fmt.Errorf("bgp: duplicate static for %v on %s", s.Prefix, net.Device(s.Device).Name)
		}
		staticAt[s.Device][s.Prefix.Masked()] = s
	}

	ribs := make([]map[netip.Prefix]*ribEntry, nDev)
	for i := range ribs {
		ribs[i] = make(map[netip.Prefix]*ribEntry)
	}

	// Seed originations.
	for _, o := range cfg.Origins {
		p := o.Prefix.Masked()
		if e, dup := ribs[o.Device][p]; dup && e.originates {
			return nil, fmt.Errorf("bgp: %s originates %v twice", net.Device(o.Device).Name, p)
		}
		ribs[o.Device][p] = &ribEntry{
			dist:       0,
			origin:     o.Origin,
			nexthops:   map[netmodel.DeviceID]bool{},
			originates: true,
			edgeIface:  o.EdgeIface,
		}
	}

	// Precompute adjacency.
	neighbors := make([][]netmodel.DeviceID, nDev)
	for d := range neighbors {
		neighbors[d] = net.Neighbors(netmodel.DeviceID(d))
	}

	// Worklist fixpoint. A device re-advertises whenever its RIB changed.
	inQueue := make([]bool, nDev)
	var queue []netmodel.DeviceID
	push := func(d netmodel.DeviceID) {
		if !inQueue[d] {
			inQueue[d] = true
			queue = append(queue, d)
		}
	}
	for d := 0; d < nDev; d++ {
		if len(ribs[d]) > 0 {
			push(netmodel.DeviceID(d))
		}
	}

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		du := net.Device(u)
		for p, eu := range ribs[u] {
			// Statics suppress advertisement of the prefix.
			if _, blocked := staticAt[u][p]; blocked {
				continue
			}
			rt := &Route{Prefix: p, Origin: eu.origin, Dist: eu.dist}
			for _, v := range neighbors[u] {
				dv := net.Device(v)
				if cfg.Export != nil && !cfg.Export(du, dv, rt) {
					continue
				}
				// Receivers with a static or an origination for the
				// prefix ignore BGP updates for it.
				if _, hasStatic := staticAt[v][p]; hasStatic {
					continue
				}
				ev := ribs[v][p]
				if ev != nil && ev.originates {
					continue
				}
				cand := eu.dist + 1
				switch {
				case ev == nil || cand < ev.dist:
					ribs[v][p] = &ribEntry{
						dist:     cand,
						origin:   eu.origin,
						nexthops: map[netmodel.DeviceID]bool{u: true},
					}
					push(v)
				case cand == ev.dist && !ev.nexthops[u]:
					ev.nexthops[u] = true
					push(v)
				}
			}
		}
	}

	// Install FIB state.
	res := &Result{RIB: make([]map[netip.Prefix]*Route, nDev)}
	for d := 0; d < nDev; d++ {
		dev := netmodel.DeviceID(d)
		res.RIB[d] = make(map[netip.Prefix]*Route, len(ribs[d]))

		// BGP routes, in deterministic prefix order so rule IDs are
		// stable across builds of the same configuration (coverage
		// traces and network JSON reference rules by ID). A static for
		// the same prefix wins even over the device's own origination
		// (B2's null-routed default in §2).
		for _, p := range sortedPrefixes(ribs[d]) {
			e := ribs[d][p]
			if _, overridden := staticAt[d][p]; overridden {
				continue
			}
			rt := &Route{Prefix: p, Origin: e.origin, Dist: e.dist}
			var action netmodel.Action
			if e.originates {
				if e.edgeIface != netmodel.NoIface {
					action = netmodel.Action{Kind: netmodel.ActForward, OutIfaces: []netmodel.IfaceID{e.edgeIface}}
				} else {
					action = netmodel.Action{Kind: netmodel.ActDeliver}
				}
			} else {
				var outs []netmodel.IfaceID
				for nb := range e.nexthops {
					rt.NextHops = append(rt.NextHops, nb)
					outs = append(outs, net.IfaceTo(dev, nb)...)
				}
				if len(outs) == 0 {
					// Unreachable entry; skip.
					continue
				}
				sortIfaces(outs)
				action = netmodel.Action{Kind: netmodel.ActForward, OutIfaces: outs}
			}
			sortDevices(rt.NextHops)
			net.AddFIBRule(dev, netmodel.MatchDst(p), action, e.origin)
			res.RIB[d][p] = rt
		}

		// Static routes, also in deterministic order.
		for _, p := range sortedPrefixes(staticAt[d]) {
			s := staticAt[d][p]
			origin := s.Origin
			if origin == "" {
				if p.Bits() == 0 {
					origin = netmodel.OriginDefault
				} else {
					origin = netmodel.OriginStatic
				}
			}
			var action netmodel.Action
			if s.Null {
				action = netmodel.Action{Kind: netmodel.ActDrop}
			} else {
				var outs []netmodel.IfaceID
				for _, nb := range s.NextHops {
					outs = append(outs, net.IfaceTo(dev, nb)...)
				}
				if len(outs) == 0 {
					return nil, fmt.Errorf("bgp: static %v on %s has no resolvable next hops", p, net.Device(dev).Name)
				}
				sortIfaces(outs)
				action = netmodel.Action{Kind: netmodel.ActForward, OutIfaces: outs}
			}
			net.AddFIBRule(dev, netmodel.MatchDst(p), action, origin)
			res.RIB[d][p] = &Route{Prefix: p, Origin: origin, Dist: 0, NextHops: s.NextHops}
		}

		// Connected /31s: local delivery, never redistributed (§7.2).
		for _, ifid := range net.Device(dev).Ifaces {
			ifc := net.Iface(ifid)
			if !ifc.Addr.IsValid() || ifc.External {
				continue
			}
			p := netip.PrefixFrom(ifc.Addr.Addr(), ifc.Addr.Bits()).Masked()
			if _, dup := res.RIB[d][p]; dup {
				continue
			}
			net.AddFIBRule(dev, netmodel.MatchDst(p), netmodel.Action{Kind: netmodel.ActDeliver}, netmodel.OriginConnected)
			res.RIB[d][p] = &Route{Prefix: p, Origin: netmodel.OriginConnected}
		}

		// Loopbacks: delivered locally at the owner. (Their BGP
		// propagation happens via Origins, set up by the topology
		// generator.)
		for _, lb := range net.Device(dev).Loopbacks {
			p := lb.Masked()
			if _, dup := res.RIB[d][p]; dup {
				continue
			}
			net.AddFIBRule(dev, netmodel.MatchDst(p), netmodel.Action{Kind: netmodel.ActDeliver}, netmodel.OriginInternal)
			res.RIB[d][p] = &Route{Prefix: p, Origin: netmodel.OriginInternal}
		}
	}
	return res, nil
}

// sortedPrefixes returns a map's prefix keys ordered by address then
// length.
func sortedPrefixes[V any](m map[netip.Prefix]V) []netip.Prefix {
	out := make([]netip.Prefix, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

func sortIfaces(s []netmodel.IfaceID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortDevices(s []netmodel.DeviceID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
