package bgp

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"yardstick/internal/netmodel"
)

func pfx(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// line builds A - B - C with /31s.
func line(t *testing.T) (*netmodel.Network, [3]netmodel.DeviceID) {
	t.Helper()
	n := netmodel.New()
	a := n.AddDevice("a", netmodel.RoleLeaf, 65001)
	b := n.AddDevice("b", netmodel.RoleSpine, 65002)
	c := n.AddDevice("c", netmodel.RoleLeaf, 65003)
	n.Connect(a, b, pfx(t, "10.255.0.0/31"))
	n.Connect(b, c, pfx(t, "10.255.0.2/31"))
	return n, [3]netmodel.DeviceID{a, b, c}
}

func fibRule(t *testing.T, n *netmodel.Network, dev netmodel.DeviceID, prefix netip.Prefix) *netmodel.Rule {
	t.Helper()
	for _, id := range n.Device(dev).FIB {
		r := n.Rule(id)
		if r.Match.DstPrefix == prefix {
			return r
		}
	}
	t.Fatalf("device %s has no FIB rule for %v", n.Device(dev).Name, prefix)
	return nil
}

func TestLinePropagation(t *testing.T) {
	n, ds := line(t)
	a, b, c := ds[0], ds[1], ds[2]
	host := n.AddEdgeIface(a, "host", pfx(t, "10.1.0.0/24"))
	res, err := Run(Config{
		Net:     n,
		Origins: []Origination{{Device: a, Prefix: pfx(t, "10.1.0.0/24"), Origin: netmodel.OriginInternal, EdgeIface: host}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A forwards out the host edge.
	ra := fibRule(t, n, a, pfx(t, "10.1.0.0/24"))
	if ra.Action.Kind != netmodel.ActForward || len(ra.Action.OutIfaces) != 1 || ra.Action.OutIfaces[0] != host {
		t.Errorf("origin action = %+v", ra.Action)
	}
	// B forwards toward A; C toward B.
	rb := fibRule(t, n, b, pfx(t, "10.1.0.0/24"))
	if got := n.Iface(rb.Action.OutIfaces[0]); n.Iface(got.Peer).Device != a {
		t.Error("b should forward to a")
	}
	rc := fibRule(t, n, c, pfx(t, "10.1.0.0/24"))
	if got := n.Iface(rc.Action.OutIfaces[0]); n.Iface(got.Peer).Device != b {
		t.Error("c should forward to b")
	}
	// Distances.
	if res.RIB[c][pfx(t, "10.1.0.0/24")].Dist != 2 {
		t.Errorf("dist at c = %d, want 2", res.RIB[c][pfx(t, "10.1.0.0/24")].Dist)
	}
}

func TestECMPDiamond(t *testing.T) {
	n := netmodel.New()
	a := n.AddDevice("a", netmodel.RoleToR, 65001)
	b1 := n.AddDevice("b1", netmodel.RoleSpine, 65002)
	b2 := n.AddDevice("b2", netmodel.RoleSpine, 65003)
	c := n.AddDevice("c", netmodel.RoleToR, 65004)
	n.Connect(a, b1, pfx(t, "10.255.0.0/31"))
	n.Connect(a, b2, pfx(t, "10.255.0.2/31"))
	n.Connect(c, b1, pfx(t, "10.255.0.4/31"))
	n.Connect(c, b2, pfx(t, "10.255.0.6/31"))
	res, err := Run(Config{
		Net:     n,
		Origins: []Origination{{Device: a, Prefix: pfx(t, "10.1.0.0/24"), Origin: netmodel.OriginInternal, EdgeIface: netmodel.NoIface}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rc := fibRule(t, n, c, pfx(t, "10.1.0.0/24"))
	if len(rc.Action.OutIfaces) != 2 {
		t.Fatalf("c should ECMP across two uplinks, got %v", rc.Action.OutIfaces)
	}
	rt := res.RIB[c][pfx(t, "10.1.0.0/24")]
	if len(rt.NextHops) != 2 || rt.Dist != 2 {
		t.Errorf("route at c = %+v", rt)
	}
}

func TestStaticOverridesAndNullSuppresses(t *testing.T) {
	// a - b - c; a originates default; b has a null static default.
	// c must not learn the default at all (the §2 outage mechanism).
	n, ds := line(t)
	a, b, c := ds[0], ds[1], ds[2]
	def := pfx(t, "0.0.0.0/0")
	_, err := Run(Config{
		Net:     n,
		Origins: []Origination{{Device: a, Prefix: def, Origin: netmodel.OriginDefault, EdgeIface: netmodel.NoIface}},
		Statics: []StaticRoute{{Device: b, Prefix: def, Null: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rb := fibRule(t, n, b, def)
	if rb.Action.Kind != netmodel.ActDrop {
		t.Errorf("b's default should be a null route, got %+v", rb.Action)
	}
	if rb.Origin != netmodel.OriginDefault {
		t.Errorf("null default origin = %v", rb.Origin)
	}
	for _, id := range n.Device(c).FIB {
		if n.Rule(id).Match.DstPrefix == def {
			t.Fatal("c learned the default despite b's null static")
		}
	}
}

func TestStaticWithNextHops(t *testing.T) {
	n, ds := line(t)
	b := ds[1]
	a := ds[0]
	def := pfx(t, "0.0.0.0/0")
	_, err := Run(Config{
		Net:     n,
		Statics: []StaticRoute{{Device: b, Prefix: def, NextHops: []netmodel.DeviceID{a}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rb := fibRule(t, n, b, def)
	if rb.Action.Kind != netmodel.ActForward {
		t.Fatalf("static should forward, got %+v", rb.Action)
	}
	if dev := n.Iface(n.Iface(rb.Action.OutIfaces[0]).Peer).Device; dev != a {
		t.Error("static next hop resolution wrong")
	}
}

func TestStaticUnresolvableNextHopErrors(t *testing.T) {
	n, ds := line(t)
	a, c := ds[0], ds[2]
	// a and c are not adjacent.
	_, err := Run(Config{
		Net:     n,
		Statics: []StaticRoute{{Device: a, Prefix: pfx(t, "0.0.0.0/0"), NextHops: []netmodel.DeviceID{c}}},
	})
	if err == nil {
		t.Fatal("expected error for unresolvable static next hop")
	}
}

func TestExportFilterScopesRoutes(t *testing.T) {
	// hub - spine - agg; wide-area route originated at hub must reach the
	// spine but not the agg.
	n := netmodel.New()
	hub := n.AddDevice("hub", netmodel.RoleHub, 65001)
	spine := n.AddDevice("spine", netmodel.RoleSpine, 65002)
	agg := n.AddDevice("agg", netmodel.RoleAgg, 65003)
	n.Connect(hub, spine, pfx(t, "10.255.0.0/31"))
	n.Connect(spine, agg, pfx(t, "10.255.0.2/31"))
	wan := pfx(t, "8.0.0.0/8")
	res, err := Run(Config{
		Net:     n,
		Origins: []Origination{{Device: hub, Prefix: wan, Origin: netmodel.OriginWideArea, EdgeIface: netmodel.NoIface}},
		Export: func(from, to *netmodel.Device, rt *Route) bool {
			return !(rt.Origin == netmodel.OriginWideArea && to.Role == netmodel.RoleAgg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RIB[spine][wan] == nil {
		t.Error("spine should learn the wide-area route")
	}
	if res.RIB[agg][wan] != nil {
		t.Error("agg should not learn the wide-area route")
	}
}

func TestConnectedRoutesInstalledNotPropagated(t *testing.T) {
	n, ds := line(t)
	a, b, c := ds[0], ds[1], ds[2]
	res, err := Run(Config{Net: n})
	if err != nil {
		t.Fatal(err)
	}
	ab := pfx(t, "10.255.0.0/31")
	// Both ends have it as a connected deliver route.
	for _, d := range []netmodel.DeviceID{a, b} {
		rt := res.RIB[d][ab]
		if rt == nil || rt.Origin != netmodel.OriginConnected {
			t.Fatalf("device %d missing connected route %v", d, ab)
		}
		r := fibRule(t, n, d, ab)
		if r.Action.Kind != netmodel.ActDeliver {
			t.Error("connected route should deliver locally")
		}
	}
	// c (not on the link) must not have it.
	if res.RIB[c][ab] != nil {
		t.Error("connected /31 leaked to a third device")
	}
}

func TestLoopbackOriginationPropagates(t *testing.T) {
	n, ds := line(t)
	a, c := ds[0], ds[2]
	lb := pfx(t, "192.0.2.1/32")
	n.Device(a).Loopbacks = append(n.Device(a).Loopbacks, lb)
	res, err := Run(Config{
		Net:     n,
		Origins: []Origination{{Device: a, Prefix: lb, Origin: netmodel.OriginInternal, EdgeIface: netmodel.NoIface}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ra := fibRule(t, n, a, lb)
	if ra.Action.Kind != netmodel.ActDeliver {
		t.Error("loopback at owner should deliver locally")
	}
	if res.RIB[c][lb] == nil {
		t.Error("loopback should propagate to c")
	}
}

func TestUnadvertisedLoopbackStillInstalled(t *testing.T) {
	n, ds := line(t)
	a, c := ds[0], ds[2]
	lb := pfx(t, "192.0.2.9/32")
	n.Device(a).Loopbacks = append(n.Device(a).Loopbacks, lb)
	res, err := Run(Config{Net: n})
	if err != nil {
		t.Fatal(err)
	}
	if res.RIB[a][lb] == nil {
		t.Fatal("owner missing local loopback route")
	}
	if res.RIB[c][lb] != nil {
		t.Error("unadvertised loopback leaked")
	}
}

func TestAnycastOriginNearest(t *testing.T) {
	// b1 and b2 both originate default; mid prefers both (equal), far
	// chains through mid.
	n := netmodel.New()
	b1 := n.AddDevice("b1", netmodel.RoleBorder, 65001)
	b2 := n.AddDevice("b2", netmodel.RoleBorder, 65002)
	mid := n.AddDevice("mid", netmodel.RoleSpine, 65003)
	far := n.AddDevice("far", netmodel.RoleLeaf, 65004)
	n.Connect(mid, b1, pfx(t, "10.255.0.0/31"))
	n.Connect(mid, b2, pfx(t, "10.255.0.2/31"))
	n.Connect(far, mid, pfx(t, "10.255.0.4/31"))
	def := pfx(t, "0.0.0.0/0")
	res, err := Run(Config{
		Net: n,
		Origins: []Origination{
			{Device: b1, Prefix: def, Origin: netmodel.OriginDefault, EdgeIface: netmodel.NoIface},
			{Device: b2, Prefix: def, Origin: netmodel.OriginDefault, EdgeIface: netmodel.NoIface},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt := res.RIB[mid][def]; len(rt.NextHops) != 2 {
		t.Errorf("mid should ECMP to both borders: %+v", rt)
	}
	if rt := res.RIB[far][def]; len(rt.NextHops) != 1 || rt.Dist != 2 {
		t.Errorf("far route = %+v", rt)
	}
}

func TestDuplicateStaticErrors(t *testing.T) {
	n, ds := line(t)
	b := ds[1]
	a := ds[0]
	def := pfx(t, "0.0.0.0/0")
	_, err := Run(Config{
		Net: n,
		Statics: []StaticRoute{
			{Device: b, Prefix: def, NextHops: []netmodel.DeviceID{a}},
			{Device: b, Prefix: def, Null: true},
		},
	})
	if err == nil {
		t.Fatal("duplicate static should error")
	}
}

func TestFrozenNetworkErrors(t *testing.T) {
	n, _ := line(t)
	n.ComputeMatchSets()
	if _, err := Run(Config{Net: n}); err == nil {
		t.Fatal("Run on frozen network should error")
	}
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run with nil network should error")
	}
}

// TestPropertyBGPMatchesBFS checks the control-plane invariant the
// contract tests rely on: for unfiltered prefixes, the converged BGP
// distance equals the topological BFS distance from the originator, and
// the next-hop set is exactly the neighbors one hop closer.
func TestPropertyBGPMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		// Random connected topology: spanning chain + extra edges.
		n := netmodel.New()
		nDev := rng.Intn(12) + 3
		for i := 0; i < nDev; i++ {
			n.AddDevice(fmt.Sprintf("d%d", i), netmodel.RoleSpine, uint32(65000+i))
		}
		linkAddr := uint32(0x0a800000) // 10.128.0.0
		connected := make(map[[2]int]bool)
		connect := func(a, b int) {
			if a == b {
				return
			}
			if a > b {
				a, b = b, a
			}
			if connected[[2]int{a, b}] {
				return
			}
			connected[[2]int{a, b}] = true
			p := netip.PrefixFrom(netip.AddrFrom4([4]byte{
				byte(linkAddr >> 24), byte(linkAddr >> 16), byte(linkAddr >> 8), byte(linkAddr),
			}), 31)
			linkAddr += 2
			n.Connect(netmodel.DeviceID(a), netmodel.DeviceID(b), p)
		}
		for i := 1; i < nDev; i++ {
			connect(rng.Intn(i), i)
		}
		for e := rng.Intn(2 * nDev); e > 0; e-- {
			connect(rng.Intn(nDev), rng.Intn(nDev))
		}

		origin := netmodel.DeviceID(rng.Intn(nDev))
		prefix := netip.MustParsePrefix("203.0.113.0/24")
		res, err := Run(Config{
			Net: n,
			Origins: []Origination{{
				Device: origin, Prefix: prefix,
				Origin: netmodel.OriginInternal, EdgeIface: netmodel.NoIface,
			}},
		})
		if err != nil {
			t.Fatal(err)
		}

		// BFS distances over the topology.
		dist := make([]int, nDev)
		for i := range dist {
			dist[i] = -1
		}
		dist[origin] = 0
		queue := []netmodel.DeviceID{origin}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range n.Neighbors(u) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}

		for d := 0; d < nDev; d++ {
			rt := res.RIB[d][prefix]
			if dist[d] == -1 {
				if rt != nil {
					t.Fatalf("trial %d: unreachable device %d has a route", trial, d)
				}
				continue
			}
			if rt == nil {
				t.Fatalf("trial %d: device %d missing route", trial, d)
			}
			if rt.Dist != dist[d] {
				t.Fatalf("trial %d: device %d dist %d != BFS %d", trial, d, rt.Dist, dist[d])
			}
			if d == int(origin) {
				continue
			}
			want := map[netmodel.DeviceID]bool{}
			for _, nb := range n.Neighbors(netmodel.DeviceID(d)) {
				if dist[nb] == dist[d]-1 {
					want[nb] = true
				}
			}
			if len(want) != len(rt.NextHops) {
				t.Fatalf("trial %d: device %d next hops %v, want %d ECMP members", trial, d, rt.NextHops, len(want))
			}
			for _, nh := range rt.NextHops {
				if !want[nh] {
					t.Fatalf("trial %d: device %d unexpected next hop %d", trial, d, nh)
				}
			}
		}
	}
}
