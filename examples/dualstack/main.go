// Dualstack analyzes both address families of the case-study network —
// the paper's network carries /31 IPv4 and /126 IPv6 point-to-point
// prefixes (§7.2). Each family's forwarding state is its own network in
// its own header space (104-bit vs 296-bit); the same suite runs against
// both and the coverage reports line up side by side.
//
//	go run ./examples/dualstack
package main

import (
	"context"
	"fmt"
	"log"

	"yardstick"
)

func main() {
	ctx := context.Background()
	opts := yardstick.RegionalOpts{
		DCs: 1, PodsPerDC: 2, ToRsPerPod: 4, AggsPerPod: 2,
		SpinesPerDC: 4, Hubs: 4, WANHubs: 3,
	}

	fmt.Printf("%-8s %10s %12s %12s %12s\n", "family", "rules", "dev(frac)", "if(frac)", "rule(frac)")
	for _, v6 := range []bool{false, true} {
		o := opts
		o.IPv6 = v6
		rg, err := yardstick.BuildRegional(o)
		if err != nil {
			log.Fatal(err)
		}
		suite := yardstick.Suite{
			yardstick.DefaultRouteCheck{},
			yardstick.InternalRouteCheck{},
			yardstick.ConnectedRouteCheck{},
			yardstick.WideAreaRouteCheck{Prefixes: rg.WANPrefixes, WANDevices: rg.WANHubs},
		}
		trace := yardstick.NewTrace()
		for _, res := range suite.Run(ctx, rg.Net, trace) {
			if !res.Pass() {
				log.Fatalf("%s (%v): %+v", res.Name, rg.Net.Family(), res.Failures[0])
			}
		}
		cov := yardstick.NewCoverage(rg.Net, trace)
		fmt.Printf("%-8v %10d %11.1f%% %11.1f%% %11.1f%%\n",
			rg.Net.Family(), len(rg.Net.Rules),
			100*yardstick.DeviceCoverage(cov, nil, yardstick.Fractional),
			100*yardstick.InterfaceCoverage(cov, nil, yardstick.Fractional),
			100*yardstick.RuleCoverage(cov, nil, yardstick.Fractional))
	}
	fmt.Println("\nthe families track each other: the forwarding design — and its")
	fmt.Println("testing gaps — is the same in both stacks, as the paper's dual-stack")
	fmt.Println("network would show.")
}
