// Mutation demonstrates why coverage matters with the software-testing
// mutation methodology: inject random forwarding bugs into the
// case-study network and count how many each test suite catches. The
// detection rate tracks rule coverage — the quantitative version of the
// paper's claim that covering more of the network state "increases the
// probability of uncovering more bugs".
//
//	go run ./examples/mutation
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"yardstick"
)

func main() {
	ctx := context.Background()
	rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{})
	if err != nil {
		log.Fatal(err)
	}
	net := rg.Net

	suites := []struct {
		name  string
		suite yardstick.Suite
	}{
		{"original (§7.2)", yardstick.Suite{
			yardstick.DefaultRouteCheck{}, yardstick.AggCanReachTorLoopback{},
		}},
		{"final (§7.3)", yardstick.Suite{
			yardstick.DefaultRouteCheck{}, yardstick.AggCanReachTorLoopback{},
			yardstick.InternalRouteCheck{}, yardstick.ConnectedRouteCheck{},
		}},
		{"extended (+future work)", yardstick.Suite{
			yardstick.DefaultRouteCheck{}, yardstick.AggCanReachTorLoopback{},
			yardstick.InternalRouteCheck{}, yardstick.ConnectedRouteCheck{},
			yardstick.WideAreaRouteCheck{Prefixes: rg.WANPrefixes, WANDevices: rg.WANHubs},
			yardstick.HostInterfaceCheck{},
		}},
	}

	// Coverage of each suite on the healthy network.
	coverages := make([]float64, len(suites))
	detectors := make([]func() bool, len(suites))
	for i, s := range suites {
		trace := yardstick.NewTrace()
		s.suite.Run(ctx, net, trace)
		cov := yardstick.NewCoverage(net, trace)
		coverages[i] = yardstick.RuleCoverage(cov, nil, yardstick.Fractional)

		suite := s.suite
		detectors[i] = func() bool {
			for _, res := range suite.Run(ctx, net, yardstick.NopTracker{}) {
				if !res.Pass() {
					return true
				}
			}
			return false
		}
	}

	const nFaults = 50
	rng := rand.New(rand.NewSource(2021))
	campaign, err := yardstick.RunFaultCampaign(net, rng, nFaults, nil, detectors...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("injected %d random forwarding faults (null routes, wrong next hops, missing ECMP members)\n\n", nFaults)
	fmt.Printf("%-26s %14s %12s\n", "suite", "rule coverage", "bugs caught")
	for i, s := range suites {
		fmt.Printf("%-26s %13.1f%% %8d/%d\n", s.name, 100*coverages[i], campaign.Totals[i], nFaults)
	}

	fmt.Println("\nexamples of faults only the higher-coverage suites caught:")
	shown := 0
	for i, row := range campaign.Detected {
		if !row[0] && row[len(row)-1] && shown < 3 {
			fmt.Printf("  %s\n", campaign.Faults[i])
			shown++
		}
	}
}
