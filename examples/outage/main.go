// Outage walks through the paper's §2 motivating example on the Figure 1
// data-center network: a latent null-routed default on border B2 survives
// a test suite that checks every connectivity invariant the engineers
// thought of, device coverage says everything is fine — and rule coverage
// flags the gap before the B1 failure turns it into an outage.
//
//	go run ./examples/outage
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"yardstick"
)

func main() {
	ctx := context.Background()
	// The Figure 1 network, with the bug: B2's default route is a
	// null-routed static, so B2 never propagates the default to spines.
	ex, err := yardstick.BuildExample(yardstick.ExampleOpts{BugNullRoute: true})
	if err != nil {
		log.Fatal(err)
	}
	net := ex.Net

	// The three §2 tests: leaf-to-leaf, leaf-to-WAN, border-to-leaf.
	public := net.Space.DstPrefix(netip.MustParsePrefix("93.0.0.0/8"))
	var suite yardstick.Suite
	for _, l := range ex.Leaves {
		for _, l2 := range ex.Leaves {
			if l != l2 {
				suite = append(suite, yardstick.ReachabilityTest{
					TestName: "LeafToLeaf", From: l,
					Pkts:       net.Space.DstPrefix(ex.LeafPrefix[l2]),
					WantEgress: []yardstick.IfaceID{ex.LeafIface[l2]},
					Waypoint:   -1,
				})
			}
		}
		suite = append(suite, yardstick.ReachabilityTest{
			TestName: "LeafToWAN", From: l, Pkts: public,
			WantEgress: nil, // egress location depends on ECMP; assert nothing here
			Waypoint:   -1,
		})
	}
	for _, b := range ex.Borders {
		for _, l := range ex.Leaves {
			suite = append(suite, yardstick.ReachabilityTest{
				TestName: "BorderToLeaf", From: b,
				Pkts:       net.Space.DstPrefix(ex.LeafPrefix[l]),
				WantEgress: []yardstick.IfaceID{ex.LeafIface[l]},
				Waypoint:   -1,
			})
		}
	}

	trace := yardstick.NewTrace()
	pass := true
	for _, res := range suite.Run(ctx, net, trace) {
		if !res.Pass() {
			pass = false
		}
	}
	fmt.Printf("connectivity suite: %d tests, all pass = %v\n", len(suite), pass)
	fmt.Println("the engineers believe they have all their bases covered...")

	// Coverage tells a different story.
	cov := yardstick.NewCoverage(net, trace)
	b1, _ := net.DeviceByName("b1")
	b2, _ := net.DeviceByName("b2")
	fmt.Println("\ncoverage report:")
	fmt.Printf("  device coverage (fractional): %.0f%% — every device is traversed by some test\n",
		100*yardstick.DeviceCoverage(cov, nil, yardstick.Fractional))
	b1Rule := yardstick.RuleCoverage(cov, yardstick.RulesOfDevices(net, []yardstick.DeviceID{b1.ID}), yardstick.Fractional)
	b2Rule := yardstick.RuleCoverage(cov, yardstick.RulesOfDevices(net, []yardstick.DeviceID{b2.ID}), yardstick.Fractional)
	fmt.Printf("  rule coverage on B1: %.0f%%\n", 100*b1Rule)
	fmt.Printf("  rule coverage on B2: %.0f%%  <-- lower than its symmetric twin!\n", 100*b2Rule)

	fmt.Println("\nuncovered rules on B2:")
	for origin, count := range yardstick.UncoveredByOrigin(cov, yardstick.RulesOfDevices(net, []yardstick.DeviceID{b2.ID})) {
		fmt.Printf("  %-10s %d\n", origin, count)
	}
	fmt.Println("no test packet ever uses B2's default route — exactly the rule that is null-routed.")

	// What would have happened without the warning: B1 fails.
	broken, err := yardstick.BuildExample(yardstick.ExampleOpts{BugNullRoute: true, OmitB1: true})
	if err != nil {
		log.Fatal(err)
	}
	r, err := yardstick.Reach(broken.Net, yardstick.Injected(broken.Leaves[0]),
		broken.Net.Space.DstPrefix(netip.MustParsePrefix("93.0.0.0/8")), yardstick.ReachOpts{})
	if err != nil {
		log.Fatal(err)
	}
	egressed := 0
	for range r.Egressed {
		egressed++
	}
	fmt.Printf("\nafter B1 fails: WAN-bound traffic egresses via %d interfaces (the outage: whole DC cut off)\n", egressed)

	// The fix suggested by coverage: also check the forwarding state
	// directly. DefaultRouteCheck catches the null route immediately.
	res := yardstick.DefaultRouteCheck{}.Run(net, yardstick.NewTrace())
	fmt.Printf("\nadding DefaultRouteCheck: pass = %v\n", res.Pass())
	for _, f := range res.Failures {
		fmt.Printf("  %s: %s\n", net.Device(f.Device).Name, f.Detail)
	}
}
