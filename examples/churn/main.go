// Churn walks through incremental coverage under control-plane churn:
// record a suite's trace once, then push BGP flap events through the
// rule-delta engine instead of rebuilding the network and re-running
// the suite after every event. Each delta reports what the churn cost —
// rule marks dropped with the routes that carried them (coverage decay)
// and per-device coverage drift — and the final incremental state is
// proven bit-identical to a from-scratch rebuild of the churned
// network.
//
//	go run ./examples/churn
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"yardstick"
)

func main() {
	ctx := context.Background()
	// A small regional Clos: big enough to have WAN, hub, spine, agg
	// and ToR layers churning, small enough to converge in well under a
	// second per flap event.
	rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	net := rg.Net

	// Step 1: run the suite ONCE and keep the trace. Under churn this
	// trace is the asset the delta engine preserves — the whole point
	// is to never pay for this run again.
	suite := yardstick.Suite{
		yardstick.DefaultRouteCheck{},
		yardstick.InternalRouteCheck{},
		yardstick.ConnectedRouteCheck{},
	}
	trace := yardstick.NewTrace()
	for _, res := range suite.Run(ctx, net, trace) {
		if res.Errored() {
			log.Fatalf("suite %s errored: %s", res.Name, res.Err)
		}
	}
	cov := yardstick.NewCoverage(net, trace)
	fmt.Printf("initial: %d rules, weighted rule coverage %.1f%%, config-line coverage %.1f%%\n\n",
		len(net.Rules),
		100*yardstick.RuleCoverage(cov, nil, yardstick.Weighted),
		100*yardstick.ConfigTotal(yardstick.ConfigCoverage(cov)).Fraction())

	// Step 2: wrap network + trace in a delta engine. From here on the
	// engine owns both; Apply mutates them in place and remaps the
	// surviving trace onto each new rule universe.
	eng, err := yardstick.NewDeltaEngine(net, trace)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: replay a deterministic BGP flap schedule. Every event
	// toggles one origination, the control plane re-converges, and the
	// diff against the engine's live network becomes a rule-level delta
	// document — exactly what PATCH /network carries on the wire.
	replay := yardstick.NewFlapReplay(yardstick.BGPConfig{
		Net: rg.Net, Origins: rg.Origins, Statics: rg.Statics, Export: rg.Export,
	})
	flaps := yardstick.GenFlaps(7, 10, len(rg.Origins))
	for i, ev := range flaps {
		if err := replay.Toggle(ev); err != nil {
			log.Fatal(err)
		}
		next, err := replay.Build()
		if err != nil {
			log.Fatal(err)
		}
		ops, err := yardstick.DiffNetworks(eng.Net, next)
		if err != nil {
			log.Fatal(err)
		}
		applied, err := eng.Apply(yardstick.DeltaDocument{Base: eng.Fingerprint(), Ops: ops})
		if err != nil {
			log.Fatal(err)
		}

		state := "withdraw"
		if ev.Up {
			state = "announce"
		}
		covNow := yardstick.NewCoverage(eng.Net, eng.Trace)
		fmt.Printf("event %2d  %-8s origin %2d: %2d ops (+%d -%d ~%d), decay %d marks (%.4f), coverage %.1f%%\n",
			i, state, ev.Origin, len(ops),
			applied.Added, applied.Removed, applied.Modified,
			applied.Decay.DroppedMarks, applied.Decay.LostFraction,
			100*yardstick.RuleCoverage(covNow, nil, yardstick.Weighted))
		for _, d := range applied.Drift {
			fmt.Printf("          drift %-12s %.1f%% -> %.1f%%\n", d.Device, 100*d.Before, 100*d.After)
		}
	}

	// Step 4: a surgical delta. The flap schedule above mostly churns
	// routes the suite never rule-marked, so decay stayed zero. Remove
	// a default route the DefaultRouteCheck *did* inspect and the
	// engine reports the lost attestation — the trace mass this change
	// invalidated, itemized by rule.
	var marked yardstick.RuleID = -1
	for _, r := range eng.Net.Rules {
		if r.Origin == yardstick.OriginDefault && eng.Trace.RuleMarked(r.ID) {
			marked = r.ID
			break
		}
	}
	if marked >= 0 {
		applied, err := eng.Apply(yardstick.DeltaDocument{
			Base: eng.Fingerprint(),
			Ops:  []yardstick.DeltaOp{{Op: yardstick.DeltaRemove, Rule: marked}},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsurgical delta: removed marked default route %d\n", marked)
		for _, l := range applied.Decay.Lost {
			fmt.Printf("  decay: rule %d on %s (%s) — %.4f of the space no longer attested\n",
				l.OldID, l.Device, l.Origin, l.Fraction)
		}
	}

	// Step 5: the exactness proof. Rebuild the churned network from its
	// own serialized bytes, transfer the trace onto the rebuild's
	// header space, and compare coverage — the incremental path must be
	// bit-identical to starting over.
	var buf bytes.Buffer
	if err := eng.Net.EncodeJSON(&buf); err != nil {
		log.Fatal(err)
	}
	rebuilt, err := yardstick.DecodeNetworkJSON(&buf)
	if err != nil {
		log.Fatal(err)
	}
	rebuilt.ComputeMatchSets()
	moved := eng.Trace.TransferTo(rebuilt.Space)

	covInc := yardstick.NewCoverage(eng.Net, eng.Trace)
	covRb := yardstick.NewCoverage(rebuilt, moved)
	exact := true
	for _, kind := range []yardstick.AggKind{yardstick.Simple, yardstick.Weighted, yardstick.Fractional} {
		if yardstick.RuleCoverage(covInc, nil, kind) != yardstick.RuleCoverage(covRb, nil, kind) {
			exact = false
		}
	}

	fmt.Printf("\nafter churn: %d rules, weighted rule coverage %.1f%%\n",
		len(eng.Net.Rules), 100*yardstick.RuleCoverage(covInc, nil, yardstick.Weighted))
	fmt.Println("\nconfig-line coverage after churn (replaced routes restart at zero):")
	yardstick.RenderConfig(os.Stdout, yardstick.ConfigCoverage(covInc))
	fmt.Printf("\nincremental == rebuild: %v\n", exact)
	if !exact {
		log.Fatal("incremental state diverged from ground truth")
	}
}
