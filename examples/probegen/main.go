// Probegen closes the loop the paper opens: Yardstick tells you which
// rules your suite never exercises; probe generation (the ATPG direction,
// cited in the paper's §9) turns exactly those rules into new, verified,
// end-to-end concrete tests. Starting from the case-study's original
// suite, the generated probes push rule coverage close to full.
//
//	go run ./examples/probegen
package main

import (
	"context"
	"fmt"
	"log"

	"yardstick"
)

func main() {
	ctx := context.Background()
	rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{})
	if err != nil {
		log.Fatal(err)
	}
	net := rg.Net

	// The original §7.2 suite leaves most rules untested.
	trace := yardstick.NewTrace()
	original := yardstick.Suite{yardstick.DefaultRouteCheck{}, yardstick.AggCanReachTorLoopback{}}
	original.Run(ctx, net, trace)
	cov := yardstick.NewCoverage(net, trace)
	fmt.Printf("original suite rule coverage: %5.1f%% (%d rules untested)\n",
		100*yardstick.RuleCoverage(cov, nil, yardstick.Fractional),
		len(yardstick.UncoveredRules(cov, nil)))

	// Generate concrete probes for the gap.
	res := yardstick.GenerateProbes(ctx, cov, yardstick.ProbeGenOptions{})
	fmt.Printf("\ngenerated %d verified probes; first three:\n", len(res.Probes))
	for i, p := range res.Probes {
		if i == 3 {
			break
		}
		fmt.Printf("  inject at %-14s %-50s -> %s (covers %d rules)\n",
			net.Device(p.Start.Device).Name, p.Packet, p.End, len(p.Covers))
	}

	// Run them as tests: all pass, and coverage jumps.
	probeSuite := res.AsTests()
	for _, r := range probeSuite.Run(ctx, net, trace) {
		if !r.Pass() {
			log.Fatalf("generated probe failed: %+v", r.Failures)
		}
	}
	cov2 := yardstick.NewCoverage(net, trace)
	fmt.Printf("\nafter adding the generated probes: %5.1f%% rule coverage\n",
		100*yardstick.RuleCoverage(cov2, nil, yardstick.Fractional))
	fmt.Printf("%d rules remain unreachable from the network edge —\n", len(res.Uncoverable))
	fmt.Println("exactly the ones that need state inspection or local tests")
	fmt.Println("(loopback delivery at owners, host-port rules), by origin:")
	for origin, count := range yardstick.UncoveredByOrigin(cov2, nil) {
		fmt.Printf("  %-10s %d\n", origin, count)
	}
}
