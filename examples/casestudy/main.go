// Casestudy replays the paper's §7 deployment story on the synthetic
// regional network: compute coverage for the original test suite, read
// the testing gaps out of the report, add the two tests the engineers
// wrote (InternalRouteCheck, ConnectedRouteCheck), and quantify the
// improvement — the Figure 6/7 narrative end to end.
//
//	go run ./examples/casestudy
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"yardstick"
)

func caseStudyRoles() []yardstick.Role {
	return []yardstick.Role{yardstick.RoleToR, yardstick.RoleAgg, yardstick.RoleSpine, yardstick.RoleHub}
}

func runAndReport(rg *yardstick.RegionalNet, label string, suite yardstick.Suite) yardstick.Metrics {
	trace := yardstick.NewTrace()
	for _, res := range suite.Run(context.Background(), rg.Net, trace) {
		if !res.Pass() {
			log.Fatalf("%s failed: %+v", res.Name, res.Failures[0])
		}
	}
	cov := yardstick.NewCoverage(rg.Net, trace)
	fmt.Printf("--- %s ---\n", label)
	rows := yardstick.ReportByRole(cov, caseStudyRoles())
	total := yardstick.ReportTotal(cov, "TOTAL")
	yardstick.RenderTable(os.Stdout, append(rows, total))
	fmt.Println()
	return total
}

func main() {
	ctx := context.Background()
	rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{})
	if err != nil {
		log.Fatal(err)
	}
	st := rg.Net.Stats()
	fmt.Printf("regional network: %d devices, %d links, %d rules\n\n", st.Devices, st.Links, st.Rules)

	// The original suite (§7.2): DefaultRouteCheck + AggCanReachTorLoopback.
	original := yardstick.Suite{yardstick.DefaultRouteCheck{}, yardstick.AggCanReachTorLoopback{}}
	before := runAndReport(rg, "original test suite (Figure 6a)", original)

	// Drill-down: which rules are untested, by category? This is the
	// analysis that surfaced the three §7.2 gaps.
	trace := yardstick.NewTrace()
	original.Run(ctx, rg.Net, trace)
	cov := yardstick.NewCoverage(rg.Net, trace)
	fmt.Println("testing gaps (untested rules by origin and role):")
	yardstick.RenderGaps(os.Stdout, yardstick.ReportGaps(cov))
	fmt.Print(`
gap 1: internal routes  -> write InternalRouteCheck (local symbolic contracts)
gap 2: connected routes -> write ConnectedRouteCheck (state inspection)
gap 3: wide-area routes -> no spec for WAN routes yet; left open (as in the paper)

`)

	// The improved suites (§7.3).
	runAndReport(rg, "InternalRouteCheck alone (Figure 6b)",
		yardstick.Suite{yardstick.InternalRouteCheck{}})
	runAndReport(rg, "ConnectedRouteCheck alone (Figure 6c)",
		yardstick.Suite{yardstick.ConnectedRouteCheck{}})
	after := runAndReport(rg, "final test suite (Figure 6d)",
		append(original, yardstick.InternalRouteCheck{}, yardstick.ConnectedRouteCheck{}))

	d := yardstick.Improvement(before, after)
	fmt.Printf("improvement (Figure 7): +%.0f%% rule coverage, +%.0f%% interface coverage\n",
		d.RulePct, d.IfacePct)
	fmt.Println("(the paper reports +89% rules and +17% interfaces for its production month)")
	fmt.Println("\nremaining gaps, as in the paper: wide-area routes on spines/hubs and")
	fmt.Println("host-facing ToR interfaces are still untested.")
}
