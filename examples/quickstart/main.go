// Quickstart: build a small network with the public API, run two tests
// that report coverage, and compute the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"os"

	"yardstick"
)

func main() {
	ctx := context.Background()
	// A two-tier network: two leaves under two spines, one host subnet
	// per leaf. The control plane is eBGP with ECMP; spines learn the
	// leaf subnets, leaves get a static default pointing north.
	net := yardstick.NewNetwork()
	l1 := net.AddDevice("leaf1", yardstick.RoleLeaf, 65001)
	l2 := net.AddDevice("leaf2", yardstick.RoleLeaf, 65002)
	s1 := net.AddDevice("spine1", yardstick.RoleSpine, 65003)
	s2 := net.AddDevice("spine2", yardstick.RoleSpine, 65004)
	net.Connect(l1, s1, netip.MustParsePrefix("10.255.0.0/31"))
	net.Connect(l1, s2, netip.MustParsePrefix("10.255.0.2/31"))
	net.Connect(l2, s1, netip.MustParsePrefix("10.255.0.4/31"))
	net.Connect(l2, s2, netip.MustParsePrefix("10.255.0.6/31"))

	p1 := netip.MustParsePrefix("10.1.0.0/24")
	p2 := netip.MustParsePrefix("10.2.0.0/24")
	h1 := net.AddEdgeIface(l1, "host0", p1)
	h2 := net.AddEdgeIface(l2, "host0", p2)
	net.Device(l1).Subnets = []netip.Prefix{p1}
	net.Device(l2).Subnets = []netip.Prefix{p2}

	_, err := yardstick.RunBGP(yardstick.BGPConfig{
		Net: net,
		Origins: []yardstick.Origination{
			{Device: l1, Prefix: p1, Origin: yardstick.OriginInternal, EdgeIface: h1},
			{Device: l2, Prefix: p2, Origin: yardstick.OriginInternal, EdgeIface: h2},
		},
		Statics: []yardstick.StaticRoute{
			{Device: l1, Prefix: netip.MustParsePrefix("0.0.0.0/0"), NextHops: []yardstick.DeviceID{s1, s2}},
			{Device: l2, Prefix: netip.MustParsePrefix("0.0.0.0/0"), NextHops: []yardstick.DeviceID{s1, s2}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	net.ComputeMatchSets()

	// Phase 1 (§5.1): run tests; they report what they exercise through
	// the Tracker.
	trace := yardstick.NewTrace()
	suite := yardstick.Suite{
		// End-to-end symbolic: every packet for leaf2's subnet injected
		// at leaf1 must egress at leaf2's host port.
		yardstick.ReachabilityTest{
			TestName:   "Leaf1CanReachLeaf2",
			From:       l1,
			Pkts:       net.Space.DstPrefix(p2),
			WantEgress: []yardstick.IfaceID{h2},
			Waypoint:   -1,
		},
		// State inspection: default routes exist and point north.
		yardstick.DefaultRouteCheck{},
	}
	for _, res := range suite.Run(ctx, net, trace) {
		fmt.Printf("%-20s %-18s %d checks, pass=%v\n", res.Name, res.Kind, res.Checks, res.Pass())
	}

	// Phase 2 (§5.2): compute coverage metrics from the trace.
	cov := yardstick.NewCoverage(net, trace)
	fmt.Println()
	fmt.Printf("rule coverage (fractional):      %5.1f%%\n", 100*yardstick.RuleCoverage(cov, nil, yardstick.Fractional))
	fmt.Printf("rule coverage (weighted):        %5.1f%%\n", 100*yardstick.RuleCoverage(cov, nil, yardstick.Weighted))
	fmt.Printf("device coverage (fractional):    %5.1f%%\n", 100*yardstick.DeviceCoverage(cov, nil, yardstick.Fractional))
	fmt.Printf("interface coverage (fractional): %5.1f%%\n", 100*yardstick.InterfaceCoverage(cov, nil, yardstick.Fractional))

	// Drill into what the suite missed.
	fmt.Println("\nuntested rules by origin:")
	for origin, count := range yardstick.UncoveredByOrigin(cov, nil) {
		fmt.Printf("  %-10s %d\n", origin, count)
	}

	fmt.Println("\nfull report:")
	yardstick.RenderTable(os.Stdout, []yardstick.Metrics{yardstick.ReportTotal(cov, "all devices")})
}
