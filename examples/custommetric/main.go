// Custommetric shows the programmable side of the coverage framework
// (§4.3): flow coverage for an application's traffic, a hand-built
// component specification ("all traffic that crosses the firewall") with
// a custom measure/combinator choice, and an ACL test from the Figure 2
// taxonomy.
//
//	go run ./examples/custommetric
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"yardstick"
)

func main() {
	ctx := context.Background()
	// A firewalled edge: leaf -> firewall -> border. The firewall denies
	// telnet (port 23) and permits everything else; the border routes
	// the default out the WAN.
	net := yardstick.NewNetwork()
	leaf := net.AddDevice("leaf", yardstick.RoleLeaf, 65001)
	fw := net.AddDevice("fw", yardstick.RoleSpine, 65002)
	border := net.AddDevice("border", yardstick.RoleBorder, 65003)
	net.Connect(leaf, fw, netip.MustParsePrefix("10.255.0.0/31"))
	net.Connect(fw, border, netip.MustParsePrefix("10.255.0.2/31"))

	subnet := netip.MustParsePrefix("10.1.0.0/24")
	host := net.AddEdgeIface(leaf, "host0", subnet)
	net.Device(leaf).Subnets = []netip.Prefix{subnet}

	deny := yardstick.MatchAll()
	deny.DstPortLo, deny.DstPortHi = 23, 23
	net.AddACLRule(fw, deny, true)
	net.AddACLRule(fw, yardstick.MatchAll(), false)

	wan := net.AddEdgeIface(border, "wan0", netip.Prefix{})
	def := netip.MustParsePrefix("0.0.0.0/0")
	if _, err := yardstick.RunBGP(yardstick.BGPConfig{
		Net: net,
		Origins: []yardstick.Origination{
			{Device: leaf, Prefix: subnet, Origin: yardstick.OriginInternal, EdgeIface: host},
			{Device: border, Prefix: def, Origin: yardstick.OriginDefault, EdgeIface: wan},
		},
	}); err != nil {
		log.Fatal(err)
	}
	net.ComputeMatchSets()

	// Run a mixed suite from the taxonomy.
	trace := yardstick.NewTrace()
	suite := yardstick.Suite{
		// Local symbolic: the firewall must drop all telnet.
		yardstick.ACLDenyCheck{
			TestName: "FirewallDropsTelnet",
			Device:   fw,
			Match:    net.Space.DstPort(23),
		},
		// End-to-end symbolic with a waypoint: web traffic from the leaf
		// must traverse the firewall.
		yardstick.ReachabilityTest{
			TestName: "WebTrafficViaFirewall",
			From:     leaf,
			Pkts:     net.Space.DstPrefix(netip.MustParsePrefix("93.0.0.0/8")).Intersect(net.Space.DstPort(443)),
			Waypoint: fw,
		},
		// End-to-end concrete: one DNS packet makes it out.
		yardstick.PingTest{
			TestName: "DNSProbe",
			From:     leaf,
			Packet: yardstick.Packet{
				Dst: netip.MustParseAddr("9.9.9.9"), Src: netip.MustParseAddr("10.1.0.7"),
				Proto: 17, DstPort: 53, SrcPort: 40000,
			},
			WantEnd:    yardstick.TraceEgressed,
			WantDevice: border,
		},
	}
	for _, res := range suite.Run(ctx, net, trace) {
		fmt.Printf("%-24s %-16s pass=%v\n", res.Name, res.Kind, res.Pass())
	}
	cov := yardstick.NewCoverage(net, trace)

	// 1. Flow coverage (§4.3.2): how much of the outbound web flow has
	// been tested end-to-end?
	webFlow := net.Space.DstPort(443)
	fmt.Printf("\nflow coverage (leaf->anywhere:443): %.1f%%\n",
		100*yardstick.FlowCoverage(cov, yardstick.Injected(leaf), webFlow))

	// 2. A custom component: "the firewall's security posture" — its ACL
	// entries only, combined with min (the weakest entry defines the
	// component's coverage).
	var g []yardstick.GuardedString
	for _, rid := range net.Device(fw).ACL {
		g = append(g, yardstick.GuardedString{Rules: []yardstick.RuleID{rid}})
	}
	custom := yardstick.Spec{
		Name:    "firewall-acl-min",
		G:       g,
		Measure: yardstick.FractionMeasure,
		Combine: yardstick.CombineMin,
	}
	fmt.Printf("custom metric (min over firewall ACL entries): %.3f%%\n",
		100*yardstick.ComponentCoverage(cov, custom))
	fmt.Println("  -> the permit entry is barely covered; a symbolic sweep of the")
	fmt.Println("     permit space would raise the min.")

	// 3. Same component, mean combinator, after adding a broad symbolic
	// test: the framework recomputes from the same trace format.
	trace.MarkPacket(yardstick.Injected(fw), net.Space.Full())
	cov2 := yardstick.NewCoverage(net, trace)
	custom.Combine = yardstick.CombineMean
	fmt.Printf("after a full symbolic sweep of the firewall (mean): %.1f%%\n",
		100*yardstick.ComponentCoverage(cov2, custom))
}
