// Package yardstick computes test coverage metrics for stateless network
// data planes, reproducing "Test Coverage Metrics for the Network"
// (SIGCOMM 2021).
//
// The library decomposes both network components and tests into atomic
// testable units — (rule, packet) pairs — which lets it compute a range of
// coverage metrics (rule, device, interface, path, flow) from any mix of
// test types (state inspection, local or end-to-end, concrete or
// symbolic) without double counting.
//
// # Workflow
//
// Build or load a network, run tests that report coverage through a
// Tracker, then compute metrics from the resulting trace:
//
//	net, _ := yardstick.BuildRegional(yardstick.RegionalOpts{})
//	trace := yardstick.NewTrace()
//	suite := yardstick.Suite{
//		yardstick.DefaultRouteCheck{},
//		yardstick.InternalRouteCheck{},
//	}
//	results := suite.Run(ctx, net.Net, trace)
//	cov := yardstick.NewCoverage(net.Net, trace)
//	fmt.Printf("rule coverage: %.1f%%\n",
//		100*yardstick.RuleCoverage(cov, nil, yardstick.Fractional))
//
// Testing tools integrate by calling the two tracking APIs of the paper's
// §5.1 — Tracker.MarkPacket for behavioral tests (the located packets at
// each hop) and Tracker.MarkRule for state-inspection tests — and coverage
// computation happens off the testing path.
//
// The subsystems are exposed as type aliases so the whole system is usable
// through this one import: the BDD-backed packet-set algebra (Space, Set),
// the network model (Network, Device, Rule), the eBGP control-plane
// simulator and topology generators (BuildExample, BuildFatTree,
// BuildRegional), the dataplane semantics (Reach, Traceroute,
// EnumeratePaths), the test kit spanning the paper's taxonomy, and the
// coverage framework itself (GuardedString, Measure, Combinator, AggKind).
package yardstick

import (
	"context"
	"io"

	"yardstick/internal/bdd"

	"yardstick/internal/bgp"
	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/delta"
	"yardstick/internal/faults"
	"yardstick/internal/hdr"
	"yardstick/internal/netmodel"
	"yardstick/internal/pipeline"
	"yardstick/internal/probegen"
	"yardstick/internal/report"
	"yardstick/internal/sharded"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

// Network model (§4.1).
type (
	// Network is a network N = (V, I, E, S): devices, interfaces, links,
	// and forwarding state.
	Network = netmodel.Network
	// Device is one router.
	Device = netmodel.Device
	// Interface is a device port.
	Interface = netmodel.Interface
	// Rule is one match-action rule.
	Rule = netmodel.Rule
	// Match holds a rule's match fields.
	Match = netmodel.Match
	// Action is what a rule does to matched packets.
	Action = netmodel.Action
	// Transform optionally rewrites header fields.
	Transform = netmodel.Transform
	// DeviceID identifies a device.
	DeviceID = netmodel.DeviceID
	// IfaceID identifies an interface.
	IfaceID = netmodel.IfaceID
	// RuleID identifies a rule.
	RuleID = netmodel.RuleID
	// Role classifies devices (ToR, aggregation, spine, …).
	Role = netmodel.Role
	// RouteOrigin classifies rules (default, connected, internal, …).
	RouteOrigin = netmodel.RouteOrigin
)

// NewNetwork returns an empty IPv4 network over a fresh header space.
func NewNetwork() *Network { return netmodel.New() }

// NewNetworkV6 returns an empty IPv6 network. The case-study network is
// dual-stack; model each family as its own network.
func NewNetworkV6() *Network { return netmodel.NewV6() }

// DecodeNetworkJSON reads a network from its JSON representation (see
// Network.EncodeJSON) and computes match sets.
func DecodeNetworkJSON(r io.Reader) (*Network, error) { return netmodel.DecodeJSON(r) }

// ParseNetworkText reads a network from the line-oriented text format
// (see Network.EncodeText) — the router-dump-style ingestion path.
func ParseNetworkText(r io.Reader) (*Network, error) { return netmodel.ParseText(r) }

// Device roles.
const (
	RoleToR    = netmodel.RoleToR
	RoleAgg    = netmodel.RoleAgg
	RoleSpine  = netmodel.RoleSpine
	RoleHub    = netmodel.RoleHub
	RoleBorder = netmodel.RoleBorder
	RoleLeaf   = netmodel.RoleLeaf
	RoleCore   = netmodel.RoleCore
)

// Route origins.
const (
	OriginDefault   = netmodel.OriginDefault
	OriginConnected = netmodel.OriginConnected
	OriginInternal  = netmodel.OriginInternal
	OriginWideArea  = netmodel.OriginWideArea
	OriginStatic    = netmodel.OriginStatic
	OriginACL       = netmodel.OriginACL
)

// Rule action kinds.
const (
	ActForward = netmodel.ActForward
	ActDrop    = netmodel.ActDrop
	ActDeliver = netmodel.ActDeliver
)

// NoIface marks packets injected directly at a device.
const NoIface = netmodel.NoIface

// MatchAll returns a match covering every packet.
func MatchAll() Match { return netmodel.MatchAll() }

// Packet sets (Figure 5).
type (
	// Space owns the BDD universe of one analysis.
	Space = hdr.Space
	// Set is a set of packet headers.
	Set = hdr.Set
	// Packet is one concrete header.
	Packet = hdr.Packet
	// EngineLimits bounds the symbolic engine (Space.SetLimits): node
	// table size and apply-loop work. The zero value is unlimited.
	EngineLimits = bdd.Limits
)

// ErrBudgetExceeded is wrapped by every error produced by a tripped
// EngineLimits budget; test with errors.Is.
var ErrBudgetExceeded = bdd.ErrBudgetExceeded

// GuardBudget runs fn, converting a tripped engine budget or a watched
// context's cancellation into the error it carries (see bdd.Guard).
func GuardBudget(fn func()) error { return bdd.Guard(fn) }

// NewSpace returns a fresh IPv4 header space.
func NewSpace() *Space { return hdr.NewSpace() }

// NewSpaceV6 returns a fresh IPv6 header space.
func NewSpaceV6() *Space { return hdr.NewSpaceV6() }

// Dataplane semantics.
type (
	// Loc is a located packet position.
	Loc = dataplane.Loc
	// Reachability is the result of a symbolic flood.
	Reachability = dataplane.Reachability
	// TraceHop is one hop of a concrete traceroute.
	TraceHop = dataplane.TraceHop
	// Path is one guarded string of the path universe.
	Path = dataplane.Path
	// EnumOpts bounds path enumeration.
	EnumOpts = dataplane.EnumOpts
	// ReachOpts configures a symbolic flood.
	ReachOpts = dataplane.ReachOpts
)

// Injected returns the location of packets injected at a device.
func Injected(dev DeviceID) Loc { return dataplane.Injected(dev) }

// Traceroute outcomes.
const (
	TraceDelivered = dataplane.TraceDelivered
	TraceEgressed  = dataplane.TraceEgressed
	TraceDropped   = dataplane.TraceDropped
	TraceDenied    = dataplane.TraceDenied
	TraceNoRoute   = dataplane.TraceNoRoute
	TraceLoop      = dataplane.TraceLoop
)

// Reach symbolically floods a packet set through the network.
func Reach(net *Network, start Loc, pkts Set, opts ReachOpts) (*Reachability, error) {
	return dataplane.Reach(net, start, pkts, opts)
}

// Traceroute follows one concrete packet through the network.
func Traceroute(net *Network, start Loc, pkt Packet) dataplane.Trace {
	return dataplane.Traceroute(net, start, pkt)
}

// EnumeratePaths streams the path universe (§5.2 Step 3). Cancelling
// ctx stops the walk; the second result is then false (incomplete).
func EnumeratePaths(ctx context.Context, net *Network, starts []dataplane.Start, opts EnumOpts, visit func(Path) bool) (int, bool) {
	return dataplane.EnumeratePaths(ctx, net, starts, opts, visit)
}

// EdgeStarts returns the canonical path-enumeration injection points.
func EdgeStarts(net *Network) []dataplane.Start { return dataplane.EdgeStarts(net) }

// Coverage framework (§4, §5).
type (
	// Tracker is the coverage-reporting interface tests call (§5.1).
	Tracker = core.Tracker
	// CoverageTrace is the coverage trace (P_T, R_T).
	CoverageTrace = core.Trace
	// NopTracker discards coverage reports (baseline benchmarking).
	NopTracker = core.Nop
	// Coverage computes metrics from a network and a trace.
	Coverage = core.Coverage
	// GuardedString is a guard packet set followed by a rule path.
	GuardedString = core.GuardedString
	// Spec is a component coverage specification (G, µ, κ).
	Spec = core.Spec
	// Measure is µ: the coverage of one guarded string.
	Measure = core.Measure
	// Combinator is κ: folds guarded-string measures into a component
	// coverage.
	Combinator = core.Combinator
	// AggKind selects aggregation across components (α).
	AggKind = core.AggKind
	// PathCoverageResult reports an aggregate over the path universe.
	PathCoverageResult = core.PathCoverageResult
)

// NewTrace returns an empty coverage trace.
func NewTrace() *CoverageTrace { return core.NewTrace() }

// DecodeTraceJSON loads a coverage trace recorded against the given
// network (see CoverageTrace.EncodeJSON), enabling coverage to
// accumulate across runs.
func DecodeTraceJSON(net *Network, r io.Reader) (*CoverageTrace, error) {
	return core.DecodeTraceJSON(net, r)
}

// NewCoverage prepares metric computation over a frozen network and a
// trace.
func NewCoverage(net *Network, trace *CoverageTrace) *Coverage {
	return core.NewCoverage(net, trace)
}

// Aggregators (§4.3.3).
const (
	Simple     = core.Simple
	Weighted   = core.Weighted
	Fractional = core.Fractional
)

// RuleCoverage aggregates rule coverage (nil = all rules).
func RuleCoverage(c *Coverage, rules []RuleID, kind AggKind) float64 {
	return core.RuleCoverage(c, rules, kind)
}

// DeviceCoverage aggregates device coverage (nil = all devices).
func DeviceCoverage(c *Coverage, devs []DeviceID, kind AggKind) float64 {
	return core.DeviceCoverage(c, devs, kind)
}

// InterfaceCoverage aggregates outgoing-interface coverage (nil = all).
func InterfaceCoverage(c *Coverage, ifaces []IfaceID, kind AggKind) float64 {
	return core.InterfaceCoverage(c, ifaces, kind)
}

// InIfaceCoverage aggregates incoming-interface coverage (nil = all).
func InIfaceCoverage(c *Coverage, ifaces []IfaceID, kind AggKind) float64 {
	return core.InIfaceCoverage(c, ifaces, kind)
}

// PathCoverage aggregates coverage over the path universe, streaming.
func PathCoverage(ctx context.Context, c *Coverage, starts []dataplane.Start, opts EnumOpts, kind AggKind) PathCoverageResult {
	return core.PathCoverage(ctx, c, starts, opts, kind)
}

// FlowCoverage computes one flow's end-to-end coverage.
func FlowCoverage(c *Coverage, start Loc, flow Set) float64 {
	return core.FlowCoverage(c, start, flow)
}

// Flow identifies one flow of a CoFlow.
type Flow = core.Flow

// CoFlowCoverage computes coverage of a set of flows generated by one
// application (§4.3.2).
func CoFlowCoverage(c *Coverage, flows []Flow) float64 {
	return core.CoFlowCoverage(c, flows)
}

// ComponentCoverage evaluates a custom specification (Equation 1).
func ComponentCoverage(c *Coverage, s Spec) float64 { return core.ComponentCoverage(c, s) }

// Component spec builders (§4.3.2).
var (
	RuleSpec     = core.RuleSpec
	DeviceSpec   = core.DeviceSpec
	OutIfaceSpec = core.OutIfaceSpec
	InIfaceSpec  = core.InIfaceSpec
	FlowSpec     = core.FlowSpec
)

// Measures and combinators for custom specs.
var (
	FractionMeasure     = core.FractionMeasure
	PathMeasure         = core.PathMeasure
	CombineOnly         = core.CombineOnly
	CombineMean         = core.CombineMean
	CombineWeightedMean = core.CombineWeightedMean
	CombineMin          = core.CombineMin
	CombineMax          = core.CombineMax
)

// Drill-downs (§7.2).
var (
	UncoveredRules    = core.UncoveredRules
	UncoveredByOrigin = core.UncoveredByOrigin
	DevicesByRole     = core.DevicesByRole
	FilterDevices     = core.FilterDevices
	IfacesOfDevices   = core.IfacesOfDevices
	RulesOfDevices    = core.RulesOfDevices
)

// Test kit (Figure 2 taxonomy).
type (
	// Test is one network test.
	Test = testkit.Test
	// Suite is an ordered collection of tests.
	Suite = testkit.Suite
	// TestResult is a test's assertion outcome.
	TestResult = testkit.Result
	// DefaultRouteCheck verifies default routes point north.
	DefaultRouteCheck = testkit.DefaultRouteCheck
	// ConnectedRouteCheck verifies /31 connected routes on link ends.
	ConnectedRouteCheck = testkit.ConnectedRouteCheck
	// InternalRouteCheck verifies shortest-path contracts for internal
	// prefixes.
	InternalRouteCheck = testkit.InternalRouteCheck
	// AggCanReachTorLoopback verifies aggregation routers forward ToR
	// loopbacks.
	AggCanReachTorLoopback = testkit.AggCanReachTorLoopback
	// ToRContract verifies per-device contracts for hosted prefixes.
	ToRContract = testkit.ToRContract
	// ToRReachability verifies all-pairs ToR reachability symbolically.
	ToRReachability = testkit.ToRReachability
	// ToRPingmesh verifies ToR pairs with sampled concrete packets.
	ToRPingmesh = testkit.ToRPingmesh
	// PingTest is a generic end-to-end concrete test.
	PingTest = testkit.PingTest
	// ReachabilityTest is a generic end-to-end symbolic test.
	ReachabilityTest = testkit.ReachabilityTest
	// ACLDenyCheck is a generic local symbolic drop test.
	ACLDenyCheck = testkit.ACLDenyCheck
	// WideAreaRouteCheck verifies wide-area routes against a WAN prefix
	// specification (the §7.3 future-work test).
	WideAreaRouteCheck = testkit.WideAreaRouteCheck
	// HostInterfaceCheck verifies host subnets exit their host-facing
	// interfaces (the other §7.3 future-work test).
	HostInterfaceCheck = testkit.HostInterfaceCheck
	// RankedCandidate is one candidate test with its marginal coverage
	// gain.
	RankedCandidate = testkit.RankedCandidate
)

// BuiltinSuite resolves comma-separated built-in test names (default,
// connected, internal, agg, contract, reach, pingmesh, host).
func BuiltinSuite(names string) (Suite, error) { return testkit.BuiltinSuite(names) }

// Test development helpers (§7.2's "most productive test development").
var (
	// RankCandidates orders candidate tests by marginal coverage gain
	// over a baseline trace.
	RankCandidates = testkit.RankCandidates
	// GreedySuite builds a suite by repeatedly adding the
	// highest-marginal-gain candidate.
	GreedySuite = testkit.GreedySuite
)

// Topology generation and control plane.
type (
	// ExampleOpts configures the Figure 1 network.
	ExampleOpts = topogen.ExampleOpts
	// ExampleNet is the built Figure 1 network.
	ExampleNet = topogen.Example
	// FatTreeNet is a built k-ary fat-tree.
	FatTreeNet = topogen.FatTree
	// RegionalOpts sizes the case-study network.
	RegionalOpts = topogen.RegionalOpts
	// RegionalNet is the built case-study network.
	RegionalNet = topogen.Regional
	// BGPConfig drives a control-plane simulation on a hand-built
	// topology.
	BGPConfig = bgp.Config
	// StaticRoute is a per-device static route.
	StaticRoute = bgp.StaticRoute
	// Origination injects a prefix into BGP at a device.
	Origination = bgp.Origination
	// BGPResult reports the converged RIBs.
	BGPResult = bgp.Result
)

// BuildExample constructs the paper's §2 example network.
func BuildExample(opts ExampleOpts) (*ExampleNet, error) { return topogen.BuildExample(opts) }

// BuildFatTree constructs a k-ary fat-tree (§8).
func BuildFatTree(k int) (*FatTreeNet, error) { return topogen.BuildFatTree(k) }

// BuildRegional constructs the §7.1 case-study network.
func BuildRegional(opts RegionalOpts) (*RegionalNet, error) { return topogen.BuildRegional(opts) }

// RunBGP simulates the control plane on a hand-built topology and
// installs the resulting FIBs.
func RunBGP(cfg BGPConfig) (*BGPResult, error) { return bgp.Run(cfg) }

// Incremental evaluation under churn: rule-level deltas applied to a
// live network and its accumulated trace, without a suite re-run.
type (
	// DeltaOp is one rule-level change (add/remove/modify).
	DeltaOp = delta.Op
	// DeltaOpKind identifies a delta operation.
	DeltaOpKind = delta.OpKind
	// DeltaDocument is an atomic batch of ops plus the fingerprint of
	// the network they were computed against (the PATCH /network wire
	// format).
	DeltaDocument = delta.Document
	// DeltaEngine owns one live network and the trace recorded against
	// it; Apply mutates both in place.
	DeltaEngine = delta.Engine
	// DeltaApplied reports one delta application: coverage decay from
	// dropped rule marks plus per-device coverage drift.
	DeltaApplied = delta.Applied
	// DeltaRuleSpec is the portable rule definition carried by add and
	// modify ops.
	DeltaRuleSpec = netmodel.RuleSpec
	// FlapEvent toggles one BGP origination.
	FlapEvent = bgp.FlapEvent
	// FlapReplay re-converges forwarding state after each toggle — the
	// churn workload generator.
	FlapReplay = bgp.Replay
)

// Delta operations.
const (
	DeltaAdd    = delta.OpAdd
	DeltaRemove = delta.OpRemove
	DeltaModify = delta.OpModify
)

// NewDeltaEngine wraps a frozen network and its trace for incremental
// evaluation, fingerprinting the network once.
func NewDeltaEngine(net *Network, trace *CoverageTrace) (*DeltaEngine, error) {
	return delta.NewEngine(net, trace)
}

// DiffNetworks computes the rule-level ops that turn old into next,
// expressed against old's rule universe.
func DiffNetworks(old, next *Network) ([]DeltaOp, error) { return delta.Diff(old, next) }

// GenFlaps returns a deterministic withdraw/re-announce schedule over a
// configuration's originations; the same seed always yields the same
// schedule.
func GenFlaps(seed int64, n, origins int) []FlapEvent { return bgp.GenFlaps(seed, n, origins) }

// NewFlapReplay starts a flap replay with every origination announced.
func NewFlapReplay(cfg BGPConfig) *FlapReplay { return bgp.NewReplay(cfg) }

// Probe generation (the complementary ATPG direction).
type (
	// Probe is one generated, verified end-to-end concrete test.
	Probe = probegen.Probe
	// ProbeGenOptions bounds probe generation.
	ProbeGenOptions = probegen.Options
	// ProbeGenResult is a generation run's outcome.
	ProbeGenResult = probegen.Result
)

// GenerateProbes computes concrete probes covering the rules the trace
// has not touched; ProbeGenResult.AsTests turns them into a runnable
// suite. Cancelling ctx stops exploration with a partial result.
func GenerateProbes(ctx context.Context, c *Coverage, opts ProbeGenOptions) *ProbeGenResult {
	return probegen.Generate(ctx, c, opts)
}

// Change evaluation (§7.1's testing pipeline).
type (
	// PipelineConfig drives one change evaluation.
	PipelineConfig = pipeline.Config
	// PipelineResult is a change-evaluation report.
	PipelineResult = pipeline.Result
	// PipelineVerdict summarizes a change evaluation.
	PipelineVerdict = pipeline.Verdict
)

// Pipeline verdicts.
const (
	VerdictSafe              = pipeline.Safe
	VerdictTestsFailed       = pipeline.TestsFailed
	VerdictTestsErrored      = pipeline.TestsErrored
	VerdictCoverageRegressed = pipeline.CoverageRegressed
	VerdictUniverseDrifted   = pipeline.UniverseDrifted
	VerdictIncomplete        = pipeline.Incomplete
)

// EvaluateChange runs the §7.1 pipeline: build before/after states, test
// the after state, and compare coverage and path-universe size. The
// context is honored between phases and inside symbolic work; on
// cancellation or a tripped resource budget (PipelineConfig.Limits) the
// partial result comes back with the error.
func EvaluateChange(ctx context.Context, cfg PipelineConfig) (*PipelineResult, error) {
	return pipeline.Run(ctx, cfg)
}

// Parallel suite evaluation (internal/sharded): per-worker BDD spaces
// with an exact cross-space trace merge.
type (
	// ShardedConfig parameterizes a sharded engine (workers, replica
	// builder, per-shard engine limits).
	ShardedConfig = sharded.Config
	// ShardedEngine is a reusable worker pool bound to one canonical
	// network.
	ShardedEngine = sharded.Engine
	// ShardedResult is the outcome of one parallel run: results in suite
	// order, the merged trace in the canonical space, per-shard stats.
	ShardedResult = sharded.Result
	// ShardedBuilder constructs one network replica per worker; it must
	// be deterministic. Leave ShardedConfig.Build nil for the default:
	// O(size) arena clones of the canonical network.
	ShardedBuilder = sharded.Builder
	// ShardStats describes one worker's share of a run.
	ShardStats = sharded.ShardStats
)

// NewShardedEngine builds a reusable pool of cfg.Workers network
// replicas for parallel suite evaluation against net.
func NewShardedEngine(ctx context.Context, net *Network, cfg ShardedConfig) (*ShardedEngine, error) {
	return sharded.New(ctx, net, cfg)
}

// RunSharded builds a one-shot sharded engine and evaluates suite
// across it. Workers=1 and Workers=N produce identical results and an
// identical merged trace.
func RunSharded(ctx context.Context, net *Network, cfg ShardedConfig, suite Suite) (*ShardedResult, error) {
	return sharded.Run(ctx, net, cfg, suite)
}

// JSONReplicator returns a ShardedBuilder that replicates net via a
// JSON round-trip — the fallback replica factory (and the oracle the
// default clone-based replication is validated against).
func JSONReplicator(net *Network) ShardedBuilder { return sharded.JSONReplicator(net) }

// Reporting.
type (
	// Metrics is one row of a coverage report (the Figure 6 headline
	// metrics).
	Metrics = report.Metrics
	// GapRow is one category of untested rules.
	GapRow = report.GapRow
	// RuleDetail is one partially-tested rule with its uncovered
	// destination prefixes.
	RuleDetail = report.RuleDetail
	// Snapshot is a point-in-time coverage record for regression
	// detection.
	Snapshot = report.Snapshot
	// Regression is one device whose coverage dropped between
	// snapshots.
	Regression = report.Regression
	// ConfigRow is one device's config-line coverage (lines of
	// rendered configuration attested by the trace).
	ConfigRow = report.ConfigRow
)

// Report helpers.
var (
	ReportByRole          = report.ByRole
	ReportForDevices      = report.ForDevices
	ReportTotal           = report.Total
	RenderTable           = report.RenderTable
	ReportGaps            = report.Gaps
	RenderGaps            = report.RenderGaps
	Improvement           = report.Improvement
	UncoveredDetail       = report.UncoveredDetail
	RenderUncoveredDetail = report.RenderUncoveredDetail
	TakeSnapshot          = report.TakeSnapshot
	CompareSnapshots      = report.CompareSnapshots
	RenderRegressions     = report.RenderRegressions
	PathUniverseDrift     = report.PathUniverseDrift
	BuildHTMLReport       = report.BuildHTMLReport
	ConfigCoverage        = report.ConfigCoverage
	ConfigTotal           = report.ConfigTotal
	RenderConfig          = report.RenderConfig
)

// HTMLReport is a renderable self-contained coverage page.
type HTMLReport = report.HTMLReport

// Fault injection (mutation testing of test suites).
type (
	// Fault is one injected forwarding bug, revertible via Revert.
	Fault = faults.Fault
	// FaultKind selects a fault operator.
	FaultKind = faults.Kind
	// FaultCampaign reports a mutation campaign.
	FaultCampaign = faults.CampaignResult
)

// Fault operators.
const (
	FaultNullRoute    = faults.NullRoute
	FaultWrongNextHop = faults.WrongNextHop
	FaultECMPMember   = faults.ECMPMember
)

// Fault helpers.
var (
	InjectFault       = faults.Inject
	InjectRandomFault = faults.InjectRandom
	RunFaultCampaign  = faults.Run
)
