// Command promlint validates Prometheus text exposition (v0.0.4), the
// format yardstickd serves on /metrics. CI pipes a live scrape through
// it so a malformed exposition fails the build instead of silently
// breaking the scrape pipeline in production:
//
//	curl -s localhost:8080/metrics | promlint
//	promlint metrics.txt other.txt
//
// Reads stdin when no files are given. Prints one line per issue and
// exits 1 if any input had issues, 2 on I/O errors.
package main

import (
	"fmt"
	"io"
	"os"

	"yardstick/internal/promlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return lintOne("<stdin>", stdin, stdout)
	}
	code := 0
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "promlint:", err)
			return 2
		}
		if c := lintOne(path, f, stdout); c > code {
			code = c
		}
		f.Close()
	}
	return code
}

func lintOne(name string, r io.Reader, out io.Writer) int {
	issues := promlint.Lint(r)
	for _, is := range issues {
		fmt.Fprintf(out, "%s:%s\n", name, is)
	}
	if len(issues) > 0 {
		return 1
	}
	return 0
}
