package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStdinCleanAndDirty(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader("up 1\n"), &out, &errb); code != 0 {
		t.Errorf("clean stdin exit = %d, want 0\n%s", code, out.String())
	}
	out.Reset()
	if code := run(nil, strings.NewReader("1bad 2\n"), &out, &errb); code != 1 {
		t.Errorf("dirty stdin exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "<stdin>:line 1: invalid metric name") {
		t.Errorf("issue line = %q", out.String())
	}
}

func TestFileArgs(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(good, []byte("up 1\n"), 0o644)
	os.WriteFile(bad, []byte("x nope\n"), 0o644)

	var out, errb bytes.Buffer
	if code := run([]string{good, bad}, nil, &out, &errb); code != 1 {
		t.Errorf("mixed files exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "bad.txt:line 1") {
		t.Errorf("file name missing from issue: %q", out.String())
	}
	if code := run([]string{filepath.Join(dir, "absent.txt")}, nil, &out, &errb); code != 2 {
		t.Errorf("missing file exit = %d, want 2", code)
	}
}
