// Command benchfmt converts `go test -bench` text output into a stable
// JSON record, so benchmark numbers can be committed and diffed (the
// BENCH_eval.json artifact written by `make bench`).
//
//	go test -run '^$' -bench BenchmarkSuiteParallel . > bench.out
//	benchfmt -o BENCH_eval.json < bench.out
//
// Each benchmark line yields one record with the benchmark name, ns/op,
// the worker count parsed from a `workers=N` name component (sequential
// and unannotated benchmarks count as 1), and the GOMAXPROCS suffix go
// test appends when it is not 1. The header records the host's core
// count: parallel-evaluation numbers are meaningless without it — on a
// single-core host workers=N cannot beat sequential, and the record
// should say so rather than look like a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	// Name is the benchmark name with the GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// NsPerOp is the reported time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Workers is the worker-pool size parsed from a `workers=N` name
	// component; 1 for sequential or unannotated benchmarks.
	Workers int `json:"workers"`
	// Procs is the GOMAXPROCS the benchmark ran under (the `-N` name
	// suffix go test appends when it is not 1).
	Procs int `json:"procs"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns; omitted
	// when the run did not pass -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Report is the full JSON artifact.
type Report struct {
	// Cores is runtime.NumCPU() on the host that ran the benchmarks
	// (benchfmt runs on the same host as `go test -bench` in `make
	// bench`). Parallel speedups are bounded by this.
	Cores      int      `json:"cores"`
	Benchmarks []Record `json:"benchmarks"`
}

// parseLine parses one `go test -bench` output line, e.g.
//
//	BenchmarkSuiteParallel/workers=2-8    24    49733589 ns/op
//
// Non-benchmark lines (headers, PASS, ok) return ok=false.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	// Values precede their unit tokens: "123 ns/op", and with -benchmem
	// also "456 B/op" and "7 allocs/op".
	ns := -1.0
	var bytesOp, allocsOp *float64
	for i := 2; i < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		switch fields[i] {
		case "ns/op":
			ns = v
		case "B/op":
			bytesOp = &v
		case "allocs/op":
			allocsOp = &v
		}
	}
	if ns < 0 {
		return Record{}, false
	}

	name, procs := splitProcs(fields[0])
	return Record{Name: name, NsPerOp: ns, Workers: workersOf(name), Procs: procs,
		BytesPerOp: bytesOp, AllocsPerOp: allocsOp}, true
}

// splitProcs strips the `-N` GOMAXPROCS suffix go test appends to
// benchmark names when GOMAXPROCS != 1.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

// workersOf extracts the worker count from a `workers=N` component of
// the benchmark name; anything else (including sequential) is 1.
func workersOf(name string) int {
	for _, part := range strings.Split(name, "/") {
		if rest, ok := strings.CutPrefix(part, "workers="); ok {
			if n, err := strconv.Atoi(rest); err == nil && n > 0 {
				return n
			}
		}
	}
	return 1
}

func parse(r io.Reader, cores int) (*Report, error) {
	rep := &Report{Cores: cores, Benchmarks: []Record{}}
	sc := bufio.NewScanner(r)
	// Repeated names (`go test -count N`) collapse to the fastest
	// sample: min-of-N discards scheduler noise, which on a shared
	// single-core host dwarfs any real regression.
	index := map[string]int{}
	for sc.Scan() {
		rec, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if i, dup := index[rec.Name]; dup {
			if rec.NsPerOp < rep.Benchmarks[i].NsPerOp {
				rep.Benchmarks[i] = rec
			}
			continue
		}
		index[rec.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func run(in io.Reader, out io.Writer) (*Report, error) {
	rep, err := parse(in, runtime.NumCPU())
	if err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

// writeDelta prints an advisory old→new comparison. It never fails the
// run: benchmark noise is not a gate, and CI runs it with `|| true`
// anyway. Benchmarks present on only one side are called out so renames
// and coverage changes are visible in the log.
func writeDelta(w io.Writer, old, cur *Report) {
	fmt.Fprintf(w, "benchfmt: delta vs baseline (cores: %d -> %d, advisory)\n", old.Cores, cur.Cores)
	prev := make(map[string]Record, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		prev[r.Name] = r
	}
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		seen[r.Name] = true
		o, ok := prev[r.Name]
		if !ok {
			fmt.Fprintf(w, "  %-50s %12.0f ns/op  (new)\n", r.Name, r.NsPerOp)
			continue
		}
		ratio := r.NsPerOp / o.NsPerOp
		fmt.Fprintf(w, "  %-50s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			r.Name, o.NsPerOp, r.NsPerOp, (ratio-1)*100)
	}
	for _, o := range old.Benchmarks {
		if !seen[o.Name] {
			fmt.Fprintf(w, "  %-50s %12.0f ns/op  (gone)\n", o.Name, o.NsPerOp)
		}
	}
}

// checkParity is the replica-cost guardrail: the workers=1 variant of
// BenchmarkSuiteParallel does the same evaluation work as sequential
// plus replica upkeep and trace merge, so its bytes/op must stay within
// `factor` of sequential's. (Allocation counts are deterministic, so
// unlike timings this is meaningful even on noisy shared runners.) It
// prints its verdict and returns false on violation; callers decide
// whether that is fatal — CI runs it advisory with `|| true`.
func checkParity(w io.Writer, rep *Report, factor float64) bool {
	var seq, par *Record
	for i := range rep.Benchmarks {
		switch rep.Benchmarks[i].Name {
		case "BenchmarkSuiteParallel/sequential":
			seq = &rep.Benchmarks[i]
		case "BenchmarkSuiteParallel/workers=1":
			par = &rep.Benchmarks[i]
		}
	}
	if seq == nil || par == nil || seq.BytesPerOp == nil || par.BytesPerOp == nil {
		fmt.Fprintln(w, "benchfmt: parity: BenchmarkSuiteParallel sequential/workers=1 bytes/op not in input (need -benchmem), skipped")
		return true
	}
	ratio := *par.BytesPerOp / *seq.BytesPerOp
	ok := ratio <= factor
	verdict := "ok"
	if !ok {
		verdict = fmt.Sprintf("EXCEEDS %gx — replica-cost regression", factor)
	}
	fmt.Fprintf(w, "benchfmt: parity: workers=1 %.0f B/op vs sequential %.0f B/op (%.2fx, limit %gx): %s\n",
		*par.BytesPerOp, *seq.BytesPerOp, ratio, factor, verdict)
	return ok
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	deltaPath := flag.String("delta", "", "compare against a baseline JSON report (advisory, printed to stderr)")
	parity := flag.Float64("parity", 0, "check workers=1 bytes/op is within this factor of sequential (0 disables); exits 1 on violation")
	flag.Parse()

	// Read the baseline before creating -o: they are allowed to be the
	// same file (make bench updates BENCH_eval.json in place while
	// reporting the change against the committed numbers).
	var baseline *Report
	if *deltaPath != "" {
		data, err := os.ReadFile(*deltaPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfmt: no baseline:", err)
		} else {
			var rep Report
			if err := json.Unmarshal(data, &rep); err != nil {
				fmt.Fprintln(os.Stderr, "benchfmt: bad baseline:", err)
			} else {
				baseline = &rep
			}
		}
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfmt:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	rep, err := run(os.Stdin, out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
	if baseline != nil {
		writeDelta(os.Stderr, baseline, rep)
	}
	if *parity > 0 && !checkParity(os.Stderr, rep, *parity) {
		os.Exit(1)
	}
}
