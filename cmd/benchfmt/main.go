// Command benchfmt converts `go test -bench` text output into a stable
// JSON record, so benchmark numbers can be committed and diffed (the
// BENCH_eval.json artifact written by `make bench`).
//
//	go test -run '^$' -bench BenchmarkSuiteParallel . > bench.out
//	benchfmt -o BENCH_eval.json < bench.out
//
// Each benchmark line yields one record with the benchmark name, ns/op,
// the worker count parsed from a `workers=N` name component (sequential
// and unannotated benchmarks count as 1), and the GOMAXPROCS suffix go
// test appends when it is not 1. The header records the host's core
// count: parallel-evaluation numbers are meaningless without it — on a
// single-core host workers=N cannot beat sequential, and the record
// should say so rather than look like a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	// Name is the benchmark name with the GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// NsPerOp is the reported time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Workers is the worker-pool size parsed from a `workers=N` name
	// component; 1 for sequential or unannotated benchmarks.
	Workers int `json:"workers"`
	// Procs is the GOMAXPROCS the benchmark ran under (the `-N` name
	// suffix go test appends when it is not 1).
	Procs int `json:"procs"`
}

// Report is the full JSON artifact.
type Report struct {
	// Cores is runtime.NumCPU() on the host that ran the benchmarks
	// (benchfmt runs on the same host as `go test -bench` in `make
	// bench`). Parallel speedups are bounded by this.
	Cores      int      `json:"cores"`
	Benchmarks []Record `json:"benchmarks"`
}

// parseLine parses one `go test -bench` output line, e.g.
//
//	BenchmarkSuiteParallel/workers=2-8    24    49733589 ns/op
//
// Non-benchmark lines (headers, PASS, ok) return ok=false.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	// The ns/op value is the field preceding the "ns/op" unit token
	// (with -benchmem more unit pairs follow; ignore them).
	ns := -1.0
	for i := 2; i < len(fields); i++ {
		if fields[i] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return Record{}, false
			}
			ns = v
			break
		}
	}
	if ns < 0 {
		return Record{}, false
	}

	name, procs := splitProcs(fields[0])
	return Record{Name: name, NsPerOp: ns, Workers: workersOf(name), Procs: procs}, true
}

// splitProcs strips the `-N` GOMAXPROCS suffix go test appends to
// benchmark names when GOMAXPROCS != 1.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

// workersOf extracts the worker count from a `workers=N` component of
// the benchmark name; anything else (including sequential) is 1.
func workersOf(name string) int {
	for _, part := range strings.Split(name, "/") {
		if rest, ok := strings.CutPrefix(part, "workers="); ok {
			if n, err := strconv.Atoi(rest); err == nil && n > 0 {
				return n
			}
		}
	}
	return 1
}

func parse(r io.Reader, cores int) (*Report, error) {
	rep := &Report{Cores: cores, Benchmarks: []Record{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if rec, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func run(in io.Reader, out io.Writer) error {
	rep, err := parse(in, runtime.NumCPU())
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfmt:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(os.Stdin, out); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
}
