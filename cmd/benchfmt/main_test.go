package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		want Record
	}{
		{
			line: "BenchmarkSuiteParallel/sequential         \t       1\t  51389593 ns/op",
			ok:   true,
			want: Record{Name: "BenchmarkSuiteParallel/sequential", NsPerOp: 51389593, Workers: 1, Procs: 1},
		},
		{
			line: "BenchmarkSuiteParallel/workers=4-8       \t      24\t  19733589 ns/op",
			ok:   true,
			want: Record{Name: "BenchmarkSuiteParallel/workers=4", NsPerOp: 19733589, Workers: 4, Procs: 8},
		},
		{
			// -benchmem appends B/op and allocs/op pairs.
			line: "BenchmarkMarkPacket-2   \t 1000000\t      1042 ns/op\t     128 B/op\t       3 allocs/op",
			ok:   true,
			want: Record{Name: "BenchmarkMarkPacket", NsPerOp: 1042, Workers: 1, Procs: 2,
				BytesPerOp: f64(128), AllocsPerOp: f64(3)},
		},
		{
			// Sub-benchmark names can contain dashes that are not a
			// procs suffix.
			line: "BenchmarkFigure6/6a-original \t       2\t 500000000 ns/op",
			ok:   true,
			want: Record{Name: "BenchmarkFigure6/6a-original", NsPerOp: 500000000, Workers: 1, Procs: 1},
		},
		{line: "goos: linux", ok: false},
		{line: "cpu: Intel(R) Xeon(R) Processor @ 2.70GHz", ok: false},
		{line: "PASS", ok: false},
		{line: "ok  \tyardstick\t0.894s", ok: false},
		{line: "", ok: false},
		{line: "BenchmarkBroken\t1\tnotanumber ns/op", ok: false},
	}
	for _, c := range cases {
		got, ok := parseLine(c.line)
		if ok != c.ok {
			t.Errorf("parseLine(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if ok && !recordEqual(got, c.want) {
			t.Errorf("parseLine(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

func f64(v float64) *float64 { return &v }

// recordEqual compares records by value (the memory columns are
// pointers so json can omit them when -benchmem was not used).
func recordEqual(a, b Record) bool {
	eq := func(x, y *float64) bool {
		if (x == nil) != (y == nil) {
			return false
		}
		return x == nil || *x == *y
	}
	return a.Name == b.Name && a.NsPerOp == b.NsPerOp && a.Workers == b.Workers &&
		a.Procs == b.Procs && eq(a.BytesPerOp, b.BytesPerOp) && eq(a.AllocsPerOp, b.AllocsPerOp)
}

func TestParseFullOutput(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: yardstick",
		"cpu: Intel(R) Xeon(R) Processor @ 2.70GHz",
		"BenchmarkSuiteParallel/sequential         \t       1\t  51389593 ns/op",
		"BenchmarkSuiteParallel/workers=1          \t       1\t  44527537 ns/op",
		"BenchmarkSuiteParallel/workers=2          \t       1\t  49733589 ns/op",
		"BenchmarkSuiteParallel/workers=4          \t       1\t  59863083 ns/op",
		"PASS",
		"ok  \tyardstick\t0.894s",
	}, "\n")
	rep, err := parse(strings.NewReader(input), 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cores != 8 {
		t.Errorf("Cores = %d, want 8", rep.Cores)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d records, want 4: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	wantWorkers := []int{1, 1, 2, 4}
	for i, r := range rep.Benchmarks {
		if r.Workers != wantWorkers[i] {
			t.Errorf("record %d (%s): workers = %d, want %d", i, r.Name, r.Workers, wantWorkers[i])
		}
	}
}

func TestRunProducesValidJSON(t *testing.T) {
	input := "BenchmarkSuiteParallel/workers=2-4 \t 10 \t 1000 ns/op\n"
	var out bytes.Buffer
	if _, err := run(strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Cores <= 0 {
		t.Errorf("Cores = %d, want > 0", rep.Cores)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Workers != 2 || rep.Benchmarks[0].Procs != 4 {
		t.Errorf("unexpected report: %+v", rep)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(strings.NewReader("PASS\n"), &out); err == nil {
		t.Fatal("expected an error for input with no benchmark lines")
	}
}

func TestMemoryColumnsOmittedWithoutBenchmem(t *testing.T) {
	input := "BenchmarkBDDAnd \t 10 \t 1000 ns/op\n"
	var out bytes.Buffer
	if _, err := run(strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	if s := out.String(); strings.Contains(s, "bytes_per_op") || strings.Contains(s, "allocs_per_op") {
		t.Errorf("memory columns present without -benchmem:\n%s", s)
	}
}

func TestWriteDelta(t *testing.T) {
	old := &Report{Cores: 1, Benchmarks: []Record{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}}
	cur := &Report{Cores: 1, Benchmarks: []Record{
		{Name: "BenchmarkA", NsPerOp: 500},
		{Name: "BenchmarkNew", NsPerOp: 42},
	}}
	var buf bytes.Buffer
	writeDelta(&buf, old, cur)
	s := buf.String()
	for _, want := range []string{"-50.0%", "(new)", "(gone)", "BenchmarkA", "BenchmarkNew", "BenchmarkGone"} {
		if !strings.Contains(s, want) {
			t.Errorf("delta output missing %q:\n%s", want, s)
		}
	}
}

// TestMinOfNCollapse: `-count N` output collapses to the fastest
// sample per benchmark, keeping first-seen order.
func TestMinOfNCollapse(t *testing.T) {
	out := `BenchmarkA-1    10    3000 ns/op    128 B/op    4 allocs/op
BenchmarkB-1    10    9000 ns/op
BenchmarkA-1    12    2000 ns/op    120 B/op    3 allocs/op
BenchmarkA-1    11    2500 ns/op    124 B/op    4 allocs/op
BenchmarkB-1    10    9500 ns/op
`
	rep, err := parse(strings.NewReader(out), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	a, b := rep.Benchmarks[0], rep.Benchmarks[1]
	if a.Name != "BenchmarkA" || b.Name != "BenchmarkB" {
		t.Fatalf("order not preserved: %q, %q", a.Name, b.Name)
	}
	if a.NsPerOp != 2000 || *a.AllocsPerOp != 3 {
		t.Errorf("A = %v ns/op %v allocs, want the fastest sample (2000, 3)", a.NsPerOp, *a.AllocsPerOp)
	}
	if b.NsPerOp != 9000 {
		t.Errorf("B = %v ns/op, want 9000", b.NsPerOp)
	}
}

// TestCheckParity: the workers=1 bytes/op guardrail passes within the
// factor, fails outside it, and skips (passing) when the benchmarks or
// their -benchmem columns are absent.
func TestCheckParity(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	rep := func(seq, par *float64) *Report {
		return &Report{Cores: 1, Benchmarks: []Record{
			{Name: "BenchmarkSuiteParallel/sequential", NsPerOp: 1, Workers: 1, BytesPerOp: seq},
			{Name: "BenchmarkSuiteParallel/workers=1", NsPerOp: 1, Workers: 1, BytesPerOp: par},
		}}
	}

	var out strings.Builder
	if !checkParity(&out, rep(f(100), f(150)), 2) {
		t.Errorf("1.5x ratio failed a 2x limit: %s", out.String())
	}
	out.Reset()
	if checkParity(&out, rep(f(100), f(300)), 2) {
		t.Errorf("3x ratio passed a 2x limit: %s", out.String())
	}
	if !strings.Contains(out.String(), "EXCEEDS") {
		t.Errorf("violation verdict missing: %s", out.String())
	}
	out.Reset()
	if !checkParity(&out, rep(nil, nil), 2) {
		t.Error("missing -benchmem columns must skip, not fail")
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Errorf("skip not reported: %s", out.String())
	}
	out.Reset()
	if !checkParity(&out, &Report{Cores: 1}, 2) {
		t.Error("missing benchmarks must skip, not fail")
	}
}
