// Command loadgen drives a live yardstickd with an open-loop request
// stream and writes the load proof — latency quantiles plus a full
// accepted/shed/error accounting — as JSON (the BENCH_service.json
// payload).
//
//	yardstickd -listen :8080 -topology regional -queue-depth 8 -max-inflight 2 &
//	loadgen -addr http://127.0.0.1:8080 -rps 250 -duration 10s -check -out BENCH_service.json
//
// With -check, loadgen exits 1 when the run broke the admission
// contract: any non-shed 5xx, any shed missing Retry-After, or any
// dropped connection. CI runs it at a rate well past the shedding
// threshold, so the assertion is exercised under real overload.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"yardstick/internal/loadtest"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "base URL of the daemon under load")
		rps         = fs.Float64("rps", 50, "open-loop request rate")
		duration    = fs.Duration("duration", 10*time.Second, "generation window")
		suites      = fs.String("suites", "default", "comma-separated suites each job submission asks for")
		workers     = fs.Int("workers", 0, "per-job worker count (0 = server default)")
		outstanding = fs.Int("max-outstanding", 256, "cap on concurrently open requests")
		timeout     = fs.Duration("timeout", 10*time.Second, "per-request timeout")
		out         = fs.String("out", "", "write the JSON report to this file (empty = stdout)")
		check       = fs.Bool("check", false, "exit 1 when the run violates the admission contract")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep, err := loadtest.Run(ctx, loadtest.Config{
		BaseURL:        *addr,
		RPS:            *rps,
		Duration:       *duration,
		Suites:         *suites,
		Workers:        *workers,
		MaxOutstanding: *outstanding,
		RequestTimeout: *timeout,
	})
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	} else {
		stdout.Write(data)
	}

	fmt.Fprintf(stderr, "launched=%d accepted=%d shed=%d 5xx=%d transport=%d local_drops=%d accepted_p99=%.4fs\n",
		rep.Totals.Launched, rep.Totals.Accepted, rep.Totals.Shed,
		rep.Totals.Errors5xx, rep.Totals.TransportErrors, rep.Totals.LocalDrops, rep.Accepted.P99)

	if *check {
		if v := rep.Violations(); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintln(stderr, "contract violation:", msg)
			}
			return fmt.Errorf("%d admission-contract violations", len(v))
		}
		fmt.Fprintln(stderr, "admission contract held")
	}
	return nil
}
