package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"yardstick/internal/loadtest"
	"yardstick/internal/service"
	"yardstick/internal/topogen"
)

// TestRunWritesReportAndChecks drives run() end-to-end against a
// saturated service: the report lands in -out, parses back, and -check
// passes because the service shed cleanly.
func TestRunWritesReportAndChecks(t *testing.T) {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	quiet := service.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	srv := service.WithNetwork(rg.Net, quiet, service.WithJobQueue(2, time.Minute))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "BENCH_service.json")
	var stdout, stderr bytes.Buffer
	err = run(context.Background(), []string{
		"-addr", ts.URL, "-rps", "200", "-duration", "300ms", "-out", out, "-check",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadtest.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Totals.Launched == 0 || rep.Totals.Shed == 0 {
		t.Fatalf("report = %+v, want launches and sheds", rep.Totals)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("admission contract held")) {
		t.Errorf("stderr missing contract verdict: %s", stderr.String())
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-rps", "notanumber"}, io.Discard, io.Discard); err == nil {
		t.Fatal("bad flags should error")
	}
}
