// Command yardstick-coord runs a test suite across a fleet of
// yardstickd workers and merges their coverage into one exact trace —
// the multi-node front end of the coverage service:
//
//	yardstickd -listen :8081 &
//	yardstickd -listen :8082 &
//	yardstickd -listen :8083 &
//	yardstick-coord -nodes http://localhost:8081,http://localhost:8082,http://localhost:8083 \
//	    -topology regional -suite default,internal,contract
//
// The coordinator pushes its network to every node, partitions the
// suite into shards, dispatches them through the async /jobs API, and
// merges the per-shard trace fragments (GET /jobs/{id}/trace) by exact
// BDD union — so the cluster result is bit-identical to a single-node
// sequential run, no matter how shards were scheduled, retried, or
// duplicated. Failed nodes trip a circuit breaker and their work is
// re-dispatched; straggling shards can be hedged on a second node
// (-hedge-after); when no healthy node remains the run degrades into
// an explicit partial result instead of hanging.
//
// Exit codes mirror the yardstick CLI: 0 all tests passed and the run
// is complete, 2 at least one test failed, 4 the run is incomplete
// (shards failed or tests errored — the cluster could not vouch for
// the whole suite), 1 usage or setup errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"yardstick"
	"yardstick/internal/coord"
	"yardstick/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yardstick-coord:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// loadNetwork mirrors yardstickd's flag contract, minus the "start
// empty" case: the coordinator owns the authoritative replica, so it
// must have one. The returned role order matches the yardstick CLI's
// per-topology ordering, so the two tools render comparable (diffable)
// coverage tables.
func loadNetwork(netFile, topology string, k int) (*yardstick.Network, []yardstick.Role, error) {
	switch {
	case netFile != "":
		f, err := os.Open(netFile)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		var nw *yardstick.Network
		if filepath.Ext(netFile) == ".txt" {
			nw, err = yardstick.ParseNetworkText(f)
		} else {
			nw, err = yardstick.DecodeNetworkJSON(f)
		}
		if err != nil {
			return nil, nil, err
		}
		return nw, rolesOf(nw), nil
	case topology == "example":
		ex, err := yardstick.BuildExample(yardstick.ExampleOpts{})
		if err != nil {
			return nil, nil, err
		}
		return ex.Net, []yardstick.Role{yardstick.RoleLeaf, yardstick.RoleSpine, yardstick.RoleBorder}, nil
	case topology == "fattree":
		ft, err := yardstick.BuildFatTree(k)
		if err != nil {
			return nil, nil, err
		}
		return ft.Net, []yardstick.Role{yardstick.RoleToR, yardstick.RoleAgg, yardstick.RoleCore}, nil
	case topology == "regional":
		rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{})
		if err != nil {
			return nil, nil, err
		}
		return rg.Net, []yardstick.Role{yardstick.RoleToR, yardstick.RoleAgg, yardstick.RoleSpine, yardstick.RoleHub}, nil
	}
	return nil, nil, fmt.Errorf("unknown topology %q (want example, fattree, or regional, or use -net)", topology)
}

// reportFile is the -report artifact: the run's per-shard and per-node
// accounting as JSON, for CI to archive and humans to diff. Timeline is
// the cross-node span tree — coordinator dispatch spans with each
// shard's worker-side profile grafted in, all tagged with RunID.
type reportFile struct {
	RunID    string              `json:"runId"`
	Suites   []string            `json:"suites"`
	Rounds   int                 `json:"rounds"`
	Complete bool                `json:"complete"`
	Shards   []coord.ShardStatus `json:"shards"`
	Nodes    []coord.NodeReport  `json:"nodes"`
	Timeline *obs.SpanProfile    `json:"timeline,omitempty"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("yardstick-coord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodesArg      = fs.String("nodes", "", "comma-separated worker base URLs (required)")
		suiteArg      = fs.String("suite", "default,internal", "comma-separated built-in suites; each becomes one shard")
		topology      = fs.String("topology", "regional", "generated network: example, fattree, or regional")
		netFile       = fs.String("net", "", "network from a JSON or text file instead of -topology")
		k             = fs.Int("k", 8, "fat-tree arity")
		rounds        = fs.Int("rounds", 1, "repeat the shard list this many times (coverage is unchanged — merge is idempotent — but the run stretches, useful for soak and chaos testing)")
		workers       = fs.Int("workers", 0, "per-job worker hint sent to nodes (0 = node default)")
		concurrency   = fs.Int("concurrency", 0, "in-flight shard cap (0 = 2 per node)")
		shardTimeout  = fs.Duration("shard-timeout", 60*time.Second, "per-attempt deadline: submit, poll, fetch fragment")
		attempts      = fs.Int("attempts", 3, "dispatch attempts per shard")
		backoff       = fs.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubled per attempt, jittered, Retry-After honored)")
		hedgeAfter    = fs.Duration("hedge-after", 0, "hedge a straggling shard on a second node after this long (0 = off)")
		poll          = fs.Duration("poll", 0, "job poll interval (0 = client default)")
		failThreshold = fs.Int("fail-threshold", 3, "consecutive failures that trip a node's circuit breaker")
		cooldown      = fs.Duration("cooldown", 2*time.Second, "breaker open time before a half-open probe")
		runTimeout    = fs.Duration("timeout", 0, "whole-run deadline (0 = none)")
		reportPath    = fs.String("report", "", "write the per-shard/per-node JSON report (with run timeline) here")
		metricsAddr   = fs.String("metrics-addr", "", "serve the coordinator's federated /metrics, /stats, /healthz here for the duration of the run")
		scrapeEvery   = fs.Duration("scrape-interval", 2*time.Second, "worker metric federation scrape interval (needs -metrics-addr)")
		profileOut    = fs.Bool("profile", false, "print the cross-node run timeline (flame view) after the run")
		verbose       = fs.Bool("v", false, "log dispatch, retry, and breaker events to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *nodesArg == "" {
		return 1, fmt.Errorf("-nodes is required")
	}
	var nodes []string
	for _, n := range strings.Split(*nodesArg, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	suites := strings.Split(*suiteArg, ",")
	for i := range suites {
		suites[i] = strings.TrimSpace(suites[i])
	}

	nw, roles, err := loadNetwork(*netFile, *topology, *k)
	if err != nil {
		return 1, err
	}

	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if *verbose {
		logger = slog.New(slog.NewTextHandler(stderr, nil)).With("app", "yardstick-coord")
	}
	co, err := coord.New(coord.Config{
		Nodes:            nodes,
		Net:              nw,
		Workers:          *workers,
		Rounds:           *rounds,
		Concurrency:      *concurrency,
		ShardTimeout:     *shardTimeout,
		MaxAttempts:      *attempts,
		Backoff:          *backoff,
		HedgeAfter:       *hedgeAfter,
		Poll:             *poll,
		FailureThreshold: *failThreshold,
		Cooldown:         *cooldown,
		Logger:           logger,
	})
	if err != nil {
		return 1, err
	}

	// The metrics listener and federation loop live for the whole run:
	// CI (or a human) scrapes the coordinator mid-run for the fleet view.
	// Both are torn down before exit — the coordinator is a batch tool.
	if *metricsAddr != "" {
		ln, lerr := net.Listen("tcp", *metricsAddr)
		if lerr != nil {
			return 1, fmt.Errorf("metrics listener: %w", lerr)
		}
		srv := &http.Server{Handler: co.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fedCtx, fedStop := context.WithCancel(ctx)
		defer fedStop()
		go co.Federate(fedCtx, *scrapeEvery)
		fmt.Fprintf(stdout, "metrics: http://%s/metrics\n", ln.Addr())
	}

	if *runTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runTimeout)
		defer cancel()
	}
	res, err := co.Run(ctx, suites...)
	if err != nil {
		return 1, err
	}

	fmt.Fprintf(stdout, "run %s\n", res.RunID)

	// Shard and node accounting first: on a degraded run this is the
	// diagnosis.
	done := 0
	for _, sh := range res.Shards {
		if sh.Done {
			done++
		}
	}
	fmt.Fprintf(stdout, "shards: %d/%d complete over %d nodes\n", done, len(res.Shards), len(res.Nodes))
	for _, nr := range res.Nodes {
		fmt.Fprintf(stdout, "  %-32s %-9s dispatched %3d  ok %3d  failed %3d  shed %3d  trips %d\n",
			nr.Node, nr.State, nr.Dispatched, nr.Succeeded, nr.Failed, nr.Sheds, nr.Trips)
	}
	for _, sh := range res.Shards {
		if !sh.Done {
			fmt.Fprintf(stdout, "  shard %d (%s, round %d) FAILED after %d attempts: %s\n",
				sh.ID, sh.Suite, sh.Round, sh.Attempts, sh.Error)
		}
	}

	failed, errored := false, false
	fmt.Fprintln(stdout, "\ntests:")
	for _, s := range suites {
		for _, r := range res.Tests[s] {
			status := "PASS"
			switch {
			case r.Errored:
				status = fmt.Sprintf("ERROR (%s)", r.Error)
				errored = true
			case !r.Pass:
				status = fmt.Sprintf("FAIL (%d failures)", len(r.Failures))
				failed = true
			}
			fmt.Fprintf(stdout, "  %-24s %-18s %6d checks  %s\n", r.Name, r.Kind, r.Checks, status)
		}
	}

	cov := yardstick.NewCoverage(nw, res.Trace)
	rows := yardstick.ReportByRole(cov, roles)
	rows = append(rows, yardstick.ReportTotal(cov, "TOTAL"))
	fmt.Fprintln(stdout, "\ncoverage:")
	yardstick.RenderTable(stdout, rows)

	if *profileOut {
		fmt.Fprintln(stdout, "\ntimeline:")
		obs.WriteFlameProfile(stdout, res.Timeline)
	}

	if *reportPath != "" {
		rep := reportFile{RunID: res.RunID, Suites: suites, Rounds: *rounds,
			Complete: res.Complete, Shards: res.Shards, Nodes: res.Nodes,
			Timeline: res.Timeline}
		buf, merr := json.MarshalIndent(rep, "", " ")
		if merr != nil {
			return 1, merr
		}
		if werr := os.WriteFile(*reportPath, append(buf, '\n'), 0o644); werr != nil {
			return 1, werr
		}
		fmt.Fprintf(stdout, "\nwrote run report to %s\n", *reportPath)
	}

	switch {
	case failed:
		return 2, nil
	case !res.Complete || errored:
		// Incomplete runs and errored tests share a verdict: the cluster
		// did not vouch for the whole suite.
		return 4, nil
	}
	return 0, nil
}

func rolesOf(net *yardstick.Network) []yardstick.Role {
	seen := map[yardstick.Role]bool{}
	var out []yardstick.Role
	for _, d := range net.Devices {
		if !seen[d.Role] {
			seen[d.Role] = true
			out = append(out, d.Role)
		}
	}
	return out
}
