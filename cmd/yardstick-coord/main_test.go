package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yardstick"
	"yardstick/internal/service"
)

func startWorker(t *testing.T) string {
	t.Helper()
	srv := service.New(service.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); srv.RunJobs(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return ts.URL
}

// TestCoordCLI drives the full binary body against three in-process
// workers and checks the cluster's coverage table is byte-identical to
// a single-node sequential run of the same suites.
func TestCoordCLI(t *testing.T) {
	nodes := []string{startWorker(t), startWorker(t), startWorker(t)}
	report := filepath.Join(t.TempDir(), "report.json")

	var out, errOut bytes.Buffer
	code, err := run(context.Background(), []string{
		"-nodes", strings.Join(nodes, ","),
		"-suite", "default,internal",
		"-rounds", "2",
		"-poll", "2ms",
		"-report", report,
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "shards: 4/4 complete over 3 nodes") {
		t.Fatalf("missing shard summary in output:\n%s", out.String())
	}

	// The cluster coverage table must match a single-node run exactly.
	nw, roles, err := loadNetwork("", "regional", 0)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := yardstick.BuiltinSuite("default,internal")
	if err != nil {
		t.Fatal(err)
	}
	trace := yardstick.NewTrace()
	suite.Run(context.Background(), nw, trace)
	cov := yardstick.NewCoverage(nw, trace)
	rows := yardstick.ReportByRole(cov, roles)
	rows = append(rows, yardstick.ReportTotal(cov, "TOTAL"))
	var want bytes.Buffer
	yardstick.RenderTable(&want, rows)
	if !strings.Contains(out.String(), want.String()) {
		t.Fatalf("cluster coverage table differs from single-node run.\nwant:\n%s\ngot:\n%s", want.String(), out.String())
	}

	var rep reportFile
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if !rep.Complete || len(rep.Shards) != 4 || len(rep.Nodes) != 3 {
		t.Fatalf("report = %+v, want complete with 4 shards over 3 nodes", rep)
	}
}

func TestCoordCLIFlagErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code, err := run(context.Background(), nil, &out, &errOut); err == nil || code != 1 {
		t.Fatalf("missing -nodes = (%d, %v), want usage error", code, err)
	}
	if code, err := run(context.Background(), []string{"-nodes", "http://x", "-topology", "bogus"},
		&out, &errOut); err == nil || code != 1 {
		t.Fatalf("bad topology = (%d, %v), want setup error", code, err)
	}
}
