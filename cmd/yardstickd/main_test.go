package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"yardstick"
	"yardstick/internal/client"
	"yardstick/internal/jobs"
	"yardstick/internal/service"
)

// startDaemon runs the daemon in a goroutine and returns its base URL
// and a stop function that cancels (the test stand-in for SIGINT/
// SIGTERM — main wires the same cancellation through
// signal.NotifyContext) and waits for a clean exit.
func startDaemon(t *testing.T, args []string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, args, io.Discard, io.Discard, func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	stop := func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not exit after cancellation")
			return nil
		}
	}
	return "http://" + addr, stop
}

func TestGracefulShutdown(t *testing.T) {
	base, stop := startDaemon(t, []string{"-listen", "127.0.0.1:0", "-topology", "example"})

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz with preloaded topology = %d", resp.StatusCode)
	}

	// An in-flight request started just before shutdown is drained, not
	// severed: fire a suite run concurrently with the cancellation.
	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/run?suite=default", "", nil)
		if err != nil {
			inflight <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- fmt.Errorf("in-flight run = %d, want 200", resp.StatusCode)
			return
		}
		inflight <- nil
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach the server

	if err := stop(); err != nil {
		t.Fatalf("shutdown after signal: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Errorf("in-flight request during drain: %v", err)
	}

	// The listener is really gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// TestSnapshotSurvivesRestart accumulates trace state, shuts the daemon
// down, restarts it on the same snapshot file, and expects coverage to
// carry over.
func TestSnapshotSurvivesRestart(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "trace.snap")
	args := []string{"-listen", "127.0.0.1:0", "-topology", "example", "-snapshot", snap}

	base, stop := startDaemon(t, args)
	c := client.New(base)
	ctx := context.Background()

	// Accumulate coverage server-side, then shut down: the final
	// checkpoint must persist it.
	if _, err := c.Run(ctx, "default"); err != nil {
		t.Fatal(err)
	}
	cov, err := c.Coverage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Total.RuleFractional <= 0 {
		t.Fatal("no coverage accumulated before restart")
	}
	if err := stop(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// Restart on the same snapshot: coverage is recovered.
	base2, stop2 := startDaemon(t, args)
	defer stop2()
	c2 := client.New(base2)
	cov2, err := c2.Coverage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cov2.Total.RuleFractional != cov.Total.RuleFractional {
		t.Errorf("coverage after restart = %v, want %v", cov2.Total.RuleFractional, cov.Total.RuleFractional)
	}
}

// TestStaleSnapshotDiscarded restarts on a different topology: the
// snapshot's fingerprint no longer matches, so it must be discarded.
func TestStaleSnapshotDiscarded(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "trace.snap")

	base, stop := startDaemon(t, []string{"-listen", "127.0.0.1:0", "-topology", "example", "-snapshot", snap})
	c := client.New(base)
	ctx := context.Background()
	if _, err := c.Run(ctx, "default"); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	base2, stop2 := startDaemon(t, []string{"-listen", "127.0.0.1:0", "-topology", "fattree", "-k", "4", "-snapshot", snap})
	defer stop2()
	cov, err := client.New(base2).Coverage(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Total.RuleFractional != 0 {
		t.Errorf("coverage on new topology = %v, want 0 (stale snapshot discarded)", cov.Total.RuleFractional)
	}
}

// TestJobsSurviveRestart is the durable-async chaos check: kill the
// daemon with a queue full of work, restart it on the same snapshot,
// and every job must be accounted for — finished results still
// fetchable, everything caught mid-flight failed with an explicit
// reason, nothing silently lost.
func TestJobsSurviveRestart(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "trace.snap")
	// A k=12 fat-tree makes each reach+pingmesh job take ~700ms of
	// symbolic work: the backlog below is several seconds deep, so the
	// shutdown deterministically catches jobs queued and running.
	args := []string{"-listen", "127.0.0.1:0", "-topology", "fattree", "-k", "12", "-snapshot", snap}

	base, stop := startDaemon(t, args)
	c := client.New(base)
	ctx := context.Background()

	// One quick job to completion, then a backlog of heavy ones the
	// single worker cannot possibly finish before the shutdown.
	first, err := c.SubmitJob(ctx, 0, "default", "internal")
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{first.ID}
	for range 10 {
		j, err := c.SubmitJob(ctx, 0, "reach", "pingmesh")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	done, err := c.WaitJob(ctx, first.ID, 5*time.Millisecond)
	if err != nil || done.State != jobs.StateDone {
		t.Fatalf("first job = (%+v, %v), want done", done, err)
	}
	if err := stop(); err != nil {
		t.Fatalf("shutdown with queued jobs: %v", err)
	}

	// Restart on the same snapshot: the finished job's result survives.
	base2, stop2 := startDaemon(t, args)
	defer stop2()
	c2 := client.New(base2)

	got, err := c2.Job(ctx, first.ID)
	if err != nil {
		t.Fatalf("recovered job: %v", err)
	}
	if got.State != jobs.StateDone || len(got.Result) == 0 {
		t.Fatalf("recovered job = %+v, want done with result", got)
	}
	var results []service.RunResult
	if err := json.Unmarshal(got.Result, &results); err != nil || len(results) != 2 {
		t.Fatalf("recovered result = (%d tests, %v), want 2", len(results), err)
	}

	// Every submitted job is accounted for: done with a result, or
	// failed with a stated reason. Nothing vanished, nothing is stuck
	// non-terminal.
	failed := 0
	for _, id := range ids {
		j, err := c2.Job(ctx, id)
		if err != nil {
			t.Fatalf("job %s lost across restart: %v", id, err)
		}
		switch j.State {
		case jobs.StateDone:
			if len(j.Result) == 0 {
				t.Errorf("job %s done without result", id)
			}
		case jobs.StateFailed:
			failed++
			if j.Error == "" {
				t.Errorf("job %s failed without a reason", id)
			}
		default:
			t.Errorf("job %s = %s after restart, want terminal", id, j.State)
		}
	}
	if failed == 0 {
		t.Error("no job was interrupted — the chaos scenario did not exercise recovery")
	}
}

func TestLoadNetworkFromFile(t *testing.T) {
	dir := t.TempDir()

	// JSON file.
	ex, err := yardstick.BuildExample(yardstick.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ex.Net.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "net.json")
	if err := os.WriteFile(jsonPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	nw, err := loadNetwork(jsonPath, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Stats().Devices != ex.Net.Stats().Devices {
		t.Errorf("JSON load: %d devices, want %d", nw.Stats().Devices, ex.Net.Stats().Devices)
	}

	// Text file, detected by extension.
	txtPath := filepath.Join(dir, "net.txt")
	text := []byte("device a role=tor\ndevice b role=spine\nlink a b 10.128.0.0/31\nroute a 0.0.0.0/0 via b origin=default\n")
	if err := os.WriteFile(txtPath, text, 0o644); err != nil {
		t.Fatal(err)
	}
	nw, err = loadNetwork(txtPath, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Stats().Devices != 2 {
		t.Errorf("text load: %d devices, want 2", nw.Stats().Devices)
	}

	// Generated topologies and error cases.
	if nw, err := loadNetwork("", "example", 0); err != nil || nw == nil {
		t.Errorf("topology example = (%v, %v)", nw, err)
	}
	if nw, err := loadNetwork("", "", 0); err != nil || nw != nil {
		t.Errorf("no flags should mean no network, got (%v, %v)", nw, err)
	}
	if _, err := loadNetwork("", "bogus", 0); err == nil {
		t.Error("unknown topology should error")
	}
}

// TestPprofListener: -pprof-addr brings up the profiling surface on its
// own listener, never on the service port.
func TestPprofListener(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout bytes.Buffer
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-listen", "127.0.0.1:0", "-topology", "example", "-pprof-addr", "127.0.0.1:0"},
			&stdout, io.Discard, func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// The pprof line is printed before onReady fires, so stdout has it.
	var pprofAddr string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "pprof listening on "); ok {
			pprofAddr = rest
		}
	}
	if pprofAddr == "" {
		t.Fatalf("pprof address not announced:\n%s", stdout.String())
	}

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index = %d, want 200", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("goroutine")) {
		t.Error("pprof index does not list profiles")
	}

	// The service port must NOT expose pprof.
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("service port must not serve pprof")
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit")
	}
}
