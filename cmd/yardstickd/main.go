// Command yardstickd serves Yardstick over HTTP — the deployment shape
// of §7, where testing tools report coverage to a service and engineers
// read metrics and gap reports from it.
//
//	yardstickd -listen :8080 -topology regional
//	curl -X POST 'localhost:8080/run?suite=default,internal'
//	curl localhost:8080/coverage
//	curl localhost:8080/gaps
//
// Remote testing tools report coverage by POSTing trace fragments (the
// JSON written by the library's CoverageTrace.EncodeJSON) to /trace.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"yardstick"
	"yardstick/internal/service"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8080", "listen address")
		topology = flag.String("topology", "", "preload a generated network: example, fattree, or regional (empty = start without one)")
		netFile  = flag.String("net", "", "preload a network from a JSON or text file")
		k        = flag.Int("k", 8, "fat-tree arity")
	)
	flag.Parse()

	srv := service.New()
	switch {
	case *netFile != "":
		f, err := os.Open(*netFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstickd:", err)
			os.Exit(1)
		}
		var net *yardstick.Network
		if len(*netFile) > 4 && (*netFile)[len(*netFile)-4:] == ".txt" {
			net, err = yardstick.ParseNetworkText(f)
		} else {
			net, err = yardstick.DecodeNetworkJSON(f)
		}
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstickd:", err)
			os.Exit(1)
		}
		srv = service.WithNetwork(net)
	case *topology == "example":
		ex, err := yardstick.BuildExample(yardstick.ExampleOpts{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstickd:", err)
			os.Exit(1)
		}
		srv = service.WithNetwork(ex.Net)
	case *topology == "fattree":
		ft, err := yardstick.BuildFatTree(*k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstickd:", err)
			os.Exit(1)
		}
		srv = service.WithNetwork(ft.Net)
	case *topology == "regional":
		rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstickd:", err)
			os.Exit(1)
		}
		srv = service.WithNetwork(rg.Net)
	case *topology != "":
		fmt.Fprintf(os.Stderr, "yardstickd: unknown topology %q\n", *topology)
		os.Exit(1)
	}

	fmt.Printf("yardstickd listening on %s\n", *listen)
	if err := http.ListenAndServe(*listen, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "yardstickd:", err)
		os.Exit(1)
	}
}
