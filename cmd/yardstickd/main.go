// Command yardstickd serves Yardstick over HTTP — the deployment shape
// of §7, where testing tools report coverage to a service and engineers
// read metrics and gap reports from it.
//
//	yardstickd -listen :8080 -topology regional -snapshot /var/lib/yardstick/trace.snap
//	curl -X POST 'localhost:8080/run?suite=default,internal'
//	curl localhost:8080/coverage
//	curl localhost:8080/gaps
//
// Remote testing tools report coverage with the internal/client
// package, or by POSTing trace fragments (the JSON written by the
// library's CoverageTrace.EncodeJSON) to /trace.
//
// The daemon is hardened for long-running deployment: the HTTP server
// carries read/write/idle timeouts, request bodies are size-capped,
// handler panics answer 500 without killing the process, and SIGINT or
// SIGTERM triggers a graceful shutdown that drains in-flight requests
// up to -drain. With -snapshot, the accumulated trace is checkpointed
// to an atomic-rename snapshot file every -snapshot-interval and on
// shutdown, then recovered on the next start if the snapshot still
// matches the loaded network.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"yardstick"
	"yardstick/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "yardstickd:", err)
		os.Exit(1)
	}
}

// loadNetwork resolves the -net / -topology flags to a network, or nil
// when neither is set (the server starts empty and waits for
// PUT /network).
func loadNetwork(netFile, topology string, k int) (*yardstick.Network, error) {
	switch {
	case netFile != "":
		f, err := os.Open(netFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if filepath.Ext(netFile) == ".txt" {
			return yardstick.ParseNetworkText(f)
		}
		return yardstick.DecodeNetworkJSON(f)
	case topology == "example":
		ex, err := yardstick.BuildExample(yardstick.ExampleOpts{})
		if err != nil {
			return nil, err
		}
		return ex.Net, nil
	case topology == "fattree":
		ft, err := yardstick.BuildFatTree(k)
		if err != nil {
			return nil, err
		}
		return ft.Net, nil
	case topology == "regional":
		rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{})
		if err != nil {
			return nil, err
		}
		return rg.Net, nil
	case topology != "":
		return nil, fmt.Errorf("unknown topology %q", topology)
	}
	return nil, nil
}

// run is the daemon body, factored out of main so tests can drive the
// full lifecycle: ctx cancellation plays the role of SIGINT/SIGTERM,
// and onReady (when non-nil) receives the bound listen address.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("yardstickd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen       = fs.String("listen", "127.0.0.1:8080", "listen address")
		topology     = fs.String("topology", "", "preload a generated network: example, fattree, or regional (empty = start without one)")
		netFile      = fs.String("net", "", "preload a network from a JSON or text file (.txt = text format)")
		k            = fs.Int("k", 8, "fat-tree arity")
		snapshot     = fs.String("snapshot", "", "trace snapshot file for crash-safe persistence (empty = in-memory only)")
		snapInterval = fs.Duration("snapshot-interval", time.Minute, "how often to checkpoint the trace to -snapshot")
		drain        = fs.Duration("drain", 10*time.Second, "graceful-shutdown deadline for draining in-flight requests")
		maxBody      = fs.Int64("max-body", service.DefaultMaxBody, "request body size cap in bytes")
		runTimeout   = fs.Duration("run-timeout", 0, "per-request deadline for /run, /coverage and /gaps evaluation work (0 = bounded only by the HTTP write timeout)")
		workers      = fs.Int("workers", 1, "cap on per-request /run parallelism (?workers=n is clamped to this; 1 = sequential only)")
		pprofAddr    = fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = disabled). A separate listener, so profiling never shares the service port")
		maxInflight  = fs.Int("max-inflight", 16, "cap on concurrently admitted heavy requests; excess answers 429 + Retry-After (0 = unlimited)")
		queueDepth   = fs.Int("queue-depth", 64, "async job queue depth; a full queue sheds POST /jobs with 503 + Retry-After")
		jobTTL       = fs.Duration("job-ttl", time.Hour, "how long finished job results stay fetchable via GET /jobs/{id}")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := slog.New(slog.NewTextHandler(stderr, nil)).With("app", "yardstickd")
	nw, err := loadNetwork(*netFile, *topology, *k)
	if err != nil {
		return err
	}

	opts := []service.Option{
		service.WithLogger(logger),
		service.WithMaxBody(*maxBody),
		service.WithJobQueue(*queueDepth, *jobTTL),
	}
	if *maxInflight > 0 {
		opts = append(opts, service.WithAdmission(*maxInflight))
	}
	if *runTimeout > 0 {
		opts = append(opts, service.WithRunTimeout(*runTimeout))
	}
	if *workers > 1 {
		opts = append(opts, service.WithWorkers(*workers))
	}
	if *snapshot != "" {
		opts = append(opts, service.WithSnapshot(*snapshot, *snapInterval))
	}
	var srv *service.Server
	if nw != nil {
		srv = service.WithNetwork(nw, opts...)
	} else {
		srv = service.New(opts...)
	}
	restored, err := srv.Restore()
	if err != nil {
		return fmt.Errorf("restore snapshot: %w", err)
	}
	if restored {
		logger.Info("recovered trace snapshot", "path", *snapshot)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute, // server-side suite runs on large networks are slow
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelError),
	}

	// Opt-in pprof on its own listener and mux: the profiling surface is
	// never reachable through the service port, and its lifetime is tied
	// to the daemon's, not to graceful HTTP drains.
	var ps *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps = &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go ps.Serve(pln)
		defer ps.Close()
		fmt.Fprintf(stdout, "pprof listening on %s\n", pln.Addr())
	}

	checkpointerDone := make(chan struct{})
	go func() {
		defer close(checkpointerDone)
		srv.RunCheckpointer(ctx)
	}()

	// The job worker pool gets its own context, cancelled during
	// shutdown AFTER the HTTP drain: in-flight pollers keep getting
	// answers while the pool winds down, and queued work is never
	// started on a dying daemon.
	jobsCtx, jobsCancel := context.WithCancel(context.Background())
	defer jobsCancel()
	jobsDone := make(chan struct{})
	go func() {
		defer close(jobsDone)
		srv.RunJobs(jobsCtx)
	}()

	fmt.Fprintf(stdout, "yardstickd listening on %s\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Shutdown order matters: flip to draining FIRST so requests racing
	// the drain get an orderly 503 + Retry-After instead of a severed
	// connection, then drain in-flight HTTP, then stop the worker pool
	// (running jobs are cancelled, queued jobs stay queued), and only
	// after job states have settled take the final checkpoint — that is
	// what makes finished results fetchable across the restart and
	// interrupted jobs come back failed-with-reason rather than lost.
	logger.Info("shutting down", "drain", *drain)
	srv.SetDraining(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = hs.Shutdown(drainCtx)
	if errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("drain deadline exceeded, closing remaining connections")
		hs.Close()
		err = nil
	}
	jobsCancel()
	<-jobsDone         // worker pool exited; every job state is settled
	<-checkpointerDone // periodic checkpointer exited (ctx.Done)
	if cerr := srv.Checkpoint(); cerr != nil {
		logger.Error("final checkpoint", "err", cerr)
		if err == nil {
			err = cerr
		}
	}
	<-serveErr // Serve returned http.ErrServerClosed
	return err
}
