// Command experiments regenerates the paper's evaluation figures:
//
//	-fig 6    coverage by router type for the four case-study suites (6a–6d)
//	-fig 7    coverage improvement across test-suite iterations
//	-fig 8    overhead of coverage tracking on fat-trees of growing size
//	-fig 9    time to compute each metric from the coverage trace
//	-fig churn  incremental coverage under BGP flap churn (delta vs rebuild)
//	-fig all  everything
//
// Fat-tree sizes for figures 8 and 9 are controlled with -k (comma
// separated); the defaults finish in seconds. See EXPERIMENTS.md for the
// paper-vs-measured record.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"yardstick/internal/experiments"
	"yardstick/internal/obs"
	"yardstick/internal/report"
	"yardstick/internal/topogen"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "figure to regenerate: 6, 6a..6d, 7, 8, 9, mutation, churn, all")
		kArg        = flag.String("k", "4,6,8,10", "fat-tree arities for figures 8 and 9")
		pathBudget  = flag.Int("pathbudget", 500000, "path budget for figure 9 (0 = unlimited)")
		skipPaths   = flag.Bool("nopaths", false, "skip the path metric in figure 9")
		mutations   = flag.Int("mutations", 60, "faults to inject in the mutation study")
		churnEvents = flag.Int("churnevents", 12, "BGP flap events to replay in the churn study")
		subnets     = flag.Int("subnets", 1, "host subnets per ToR in the regional network (raise toward the paper's Figure 6d ToR interface numbers)")
		profile     = flag.Bool("profile", false, "print a span-tree profile of the figure runs to stderr")
	)
	flag.Parse()

	ks, err := parseKs(*kArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	// Ctrl-C / SIGTERM stop mid-figure; completed sweep points for the
	// current figure still render before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -profile wraps each regenerated figure in a span; the evaluation
	// pipelines underneath pick the span up from the context and add
	// their stage detail to it.
	var prof *obs.Span
	if *profile {
		prof = obs.NewRoot("experiments", obs.NewRegistry())
	}
	figCtx := func(name string) (context.Context, func()) {
		if prof == nil {
			return ctx, func() {}
		}
		sp := prof.Child(name)
		return obs.ContextWithSpan(ctx, sp), sp.End
	}

	want := func(name string) bool {
		return *fig == "all" || *fig == name || (len(name) == 2 && *fig == name[:1])
	}

	if want("6a") || want("6b") || want("6c") || want("6d") || *fig == "6" {
		fctx, end := figCtx("figure6")
		rg := mustRegional(*subnets)
		for _, panel := range experiments.Figure6All(fctx, rg) {
			if !(want(panel.Panel) || *fig == "6" || *fig == "all") {
				continue
			}
			fmt.Printf("=== Figure %s: suite %v ===\n", panel.Panel, panel.Suite)
			report.RenderTable(os.Stdout, panel.Rows)
			fmt.Println()
		}
		end()
	}

	if want("7") {
		fctx, end := figCtx("figure7")
		rg := mustRegional(*subnets)
		res := experiments.Figure7(fctx, rg)
		fmt.Println("=== Figure 7: coverage improvement with test suite iterations ===")
		rows := make([]report.Metrics, 0, len(res.Rows))
		for _, r := range res.Rows {
			rows = append(rows, r.Metrics)
		}
		report.RenderTable(os.Stdout, rows)
		fmt.Printf("\nheadline: +%.0f%% rule coverage, +%.0f%% interface coverage (paper: +89%% rules, +17%% interfaces)\n\n",
			res.Improvement.RulePct, res.Improvement.IfacePct)
		end()
	}

	if want("8") {
		fctx, end := figCtx("figure8")
		fmt.Println("=== Figure 8: overhead of coverage tracking ===")
		rows, err := experiments.Figure8(fctx, ks)
		end()
		fmt.Print(experiments.RenderFigure8(rows))
		fmt.Println()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if want("mutation") {
		fctx, end := figCtx("mutation")
		rg := mustRegional(*subnets)
		res, err := experiments.MutationStudy(fctx, rg, *mutations, 1)
		end()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println("=== Mutation study: coverage vs bug-finding ===")
		fmt.Print(experiments.RenderMutation(res))
		fmt.Println()
	}

	if want("churn") {
		fctx, end := figCtx("churn")
		rg := mustRegional(*subnets)
		res, err := experiments.ChurnStudy(fctx, rg, *churnEvents, 1)
		end()
		fmt.Println("=== Churn study: incremental coverage under BGP flaps ===")
		fmt.Print(experiments.RenderChurn(res))
		fmt.Println()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if want("9") {
		fctx, end := figCtx("figure9")
		fmt.Println("=== Figure 9: time to compute coverage metrics ===")
		rows, err := experiments.Figure9(fctx, ks, experiments.Figure9Opts{
			PathBudget: *pathBudget, SkipPaths: *skipPaths,
		})
		end()
		fmt.Print(experiments.RenderFigure9(rows))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if prof != nil {
		prof.End()
		fmt.Fprintln(os.Stderr)
		obs.WriteFlame(os.Stderr, prof)
	}
}

func mustRegional(subnetsPerToR int) *topogen.Regional {
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{SubnetsPerToR: subnetsPerToR})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	return rg
}

func parseKs(arg string) ([]int, error) {
	var ks []int
	for _, s := range strings.Split(arg, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		k, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad k %q", s)
		}
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("no fat-tree sizes given")
	}
	return ks, nil
}
