// Command changecheck evaluates a network change the way the paper's
// testing pipeline does (§7.1): given the pre-change and post-change
// forwarding states (JSON or text network files, e.g. from netgen or an
// external simulator), it runs the test suite on the new state and
// augments the pass/fail verdict with coverage analysis — per-device
// coverage regressions and the §5.2 path-universe drift guard, which
// catches changes the suite is blind to.
//
//	changecheck -before day0.json -after day1.json -suite default,internal,connected
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"yardstick"
)

func main() {
	var (
		before   = flag.String("before", "", "pre-change network file (.json or .txt)")
		after    = flag.String("after", "", "post-change network file (.json or .txt)")
		suiteArg = flag.String("suite", "default,connected,internal", "comma-separated tests (see yardstick -h)")
		epsilon  = flag.Float64("epsilon", 0.01, "tolerated per-device coverage drop")
		drift    = flag.Float64("drift", 0.2, "tolerated relative path-universe change")
		noPaths  = flag.Bool("nopaths", false, "skip the path-universe guard (cheaper)")
		budget   = flag.Int("pathbudget", 500000, "path enumeration budget (0 = unlimited)")
	)
	flag.Parse()
	if *before == "" || *after == "" {
		fmt.Fprintln(os.Stderr, "changecheck: -before and -after are required")
		os.Exit(1)
	}

	suite, err := parseSuite(*suiteArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "changecheck:", err)
		os.Exit(1)
	}

	// Ctrl-C / SIGTERM abort the evaluation cleanly: the partial result
	// still prints (verdict "incomplete"), then we exit nonzero below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := yardstick.EvaluateChange(ctx, yardstick.PipelineConfig{
		Before:            loader(*before),
		After:             loader(*after),
		Suite:             suite,
		RegressionEpsilon: *epsilon,
		DriftThreshold:    *drift,
		SkipPathUniverse:  *noPaths,
		PathBudget:        *budget,
	})
	if err != nil {
		// Partial results are still worth printing: the before phase may
		// have completed even when the after phase was cut short.
		fmt.Fprintln(os.Stderr, "changecheck:", err)
	}

	fmt.Println("test results on the post-change state:")
	for _, r := range res.Results {
		status := "PASS"
		switch {
		case r.Errored():
			status = fmt.Sprintf("ERROR (%s)", r.Err)
		case !r.Pass():
			status = fmt.Sprintf("FAIL (%d failures)", len(r.Failures))
		}
		fmt.Printf("  %-24s %6d checks  %s\n", r.Name, r.Checks, status)
	}

	fmt.Println("\ncoverage (before -> after):")
	fmt.Printf("  rule (fractional):  %5.1f%% -> %5.1f%%\n",
		100*res.BeforeCoverage.RuleFractional, 100*res.AfterCoverage.RuleFractional)
	fmt.Printf("  iface (fractional): %5.1f%% -> %5.1f%%\n",
		100*res.BeforeCoverage.IfaceFractional, 100*res.AfterCoverage.IfaceFractional)

	if len(res.Regressions) > 0 {
		fmt.Println("\nper-device coverage regressions:")
		yardstick.RenderRegressions(os.Stdout, res.Regressions)
	}
	if !*noPaths {
		fmt.Printf("\npath universe: %d -> %d (drift %+.1f%%)\n",
			res.PathsBefore, res.PathsAfter, 100*res.Drift)
		if res.PathsTruncated {
			fmt.Println("  (path enumeration truncated by -pathbudget)")
		}
		if res.DriftNote != "" {
			fmt.Printf("  note: %s\n", res.DriftNote)
		}
	}

	fmt.Printf("\nverdict: %s\n", res.Verdict)
	if res.Verdict != yardstick.VerdictSafe {
		os.Exit(2)
	}
}

func loader(path string) func() (*yardstick.Network, error) {
	return func() (*yardstick.Network, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(path, ".txt") {
			return yardstick.ParseNetworkText(f)
		}
		return yardstick.DecodeNetworkJSON(f)
	}
}

func parseSuite(arg string) (yardstick.Suite, error) {
	return yardstick.BuiltinSuite(arg)
}
