// Command netgen generates one of the built-in network families — the
// paper's Figure 1 example, a k-ary fat-tree (§8), or the regional
// case-study network (§7.1) — runs the eBGP control-plane simulation, and
// writes the resulting network (topology plus forwarding state) as JSON
// for consumption by the yardstick tool.
//
// Example:
//
//	netgen -topology fattree -k 8 -o fattree8.json
//	netgen -topology example -bug | yardstick -net /dev/stdin -suite default
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"yardstick"
)

func main() {
	var (
		topology = flag.String("topology", "fattree", "example, fattree, or regional")
		k        = flag.Int("k", 8, "fat-tree arity")
		bug      = flag.Bool("bug", false, "inject the §2 null-routed default on b2 (example)")
		leaves   = flag.Int("leaves", 3, "leaf count (example)")
		dcs      = flag.Int("dcs", 2, "data centers (regional)")
		pods     = flag.Int("pods", 2, "pods per DC (regional)")
		tors     = flag.Int("tors", 4, "ToRs per pod (regional)")
		aggs     = flag.Int("aggs", 2, "aggregation routers per pod (regional)")
		spines   = flag.Int("spines", 4, "spines per DC (regional)")
		hubs     = flag.Int("hubs", 4, "regional hubs (regional)")
		wanHubs  = flag.Int("wanhubs", 3, "WAN-connected hubs (regional)")
		ipv6     = flag.Bool("ipv6", false, "build the IPv6 twin (regional)")
		out      = flag.String("o", "", "output file (default stdout)")
		format   = flag.String("format", "json", "output format: json or text")
	)
	flag.Parse()

	var net *yardstick.Network
	var err error
	switch *topology {
	case "example":
		var ex *yardstick.ExampleNet
		ex, err = yardstick.BuildExample(yardstick.ExampleOpts{BugNullRoute: *bug, Leaves: *leaves})
		if err == nil {
			net = ex.Net
		}
	case "fattree":
		var ft *yardstick.FatTreeNet
		ft, err = yardstick.BuildFatTree(*k)
		if err == nil {
			net = ft.Net
		}
	case "regional":
		var rg *yardstick.RegionalNet
		rg, err = yardstick.BuildRegional(yardstick.RegionalOpts{
			DCs: *dcs, PodsPerDC: *pods, ToRsPerPod: *tors, AggsPerPod: *aggs,
			SpinesPerDC: *spines, Hubs: *hubs, WANHubs: *wanHubs, IPv6: *ipv6,
		})
		if err == nil {
			net = rg.Net
		}
	default:
		err = fmt.Errorf("unknown topology %q", *topology)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = net.EncodeJSON(w)
	case "text":
		err = net.EncodeText(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
	st := net.Stats()
	fmt.Fprintf(os.Stderr, "netgen: %d devices, %d interfaces, %d links, %d rules\n",
		st.Devices, st.Ifaces, st.Links, st.Rules)
}
