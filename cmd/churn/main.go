// Command churn replays a deterministic BGP flap schedule against a
// live yardstickd through PATCH /network and proves the daemon's
// incremental coverage stayed exact: after the full schedule, the
// daemon-side trace must equal the locally maintained one bit for bit,
// and the final coverage table must byte-match the table computed from
// a from-scratch rebuild of the churned network.
//
//	yardstickd -listen :8080 &
//	churn -addr http://127.0.0.1:8080 -events 50 -check
//
// The driver keeps a local twin of the daemon's state: the same
// network, the same suite-recorded trace, the same delta engine. Every
// flap event is re-converged by control-plane replay, diffed into a
// delta document, and applied to both sides in lockstep with the base
// fingerprint asserting neither drifted. With -check any divergence
// exits 1 — this is the churn-smoke CI gate.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"yardstick/internal/bgp"
	"yardstick/internal/client"
	"yardstick/internal/core"
	"yardstick/internal/delta"
	"yardstick/internal/netmodel"
	"yardstick/internal/report"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("churn", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr   = fs.String("addr", "http://127.0.0.1:8080", "base URL of the daemon")
		events = fs.Int("events", 50, "flap events to replay")
		seed   = fs.Int64("seed", 1, "flap schedule seed")
		suite  = fs.String("suite", "default,internal,reach", "suites recorded into the initial trace")
		wait   = fs.Duration("wait", 10*time.Second, "how long to wait for the daemon to become ready")
		check  = fs.Bool("check", false, "exit 1 on any incremental-vs-rebuild divergence")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rg, err := topogen.BuildRegional(topogen.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4,
	})
	if err != nil {
		return err
	}
	suites, err := testkit.BuiltinSuite(*suite)
	if err != nil {
		return err
	}

	// The local twin: run the suite once, wrap network + trace in a
	// delta engine.
	trace := core.NewTrace()
	for _, r := range suites.Run(ctx, rg.Net, trace) {
		if r.Errored() {
			return fmt.Errorf("suite %s errored: %s", r.Name, r.Err)
		}
	}
	eng, err := delta.NewEngine(rg.Net, trace)
	if err != nil {
		return err
	}

	cli := client.New(*addr)
	if err := waitReady(ctx, cli, *wait); err != nil {
		return err
	}
	st, err := cli.LoadNetwork(ctx, rg.Net)
	if err != nil {
		return err
	}
	if st.Fingerprint != eng.Fingerprint() {
		return fmt.Errorf("daemon loaded fingerprint %s, local %s", st.Fingerprint, eng.Fingerprint())
	}
	if _, err := cli.ReportTrace(ctx, trace); err != nil {
		return err
	}

	// Lockstep replay: every event patches the daemon and the twin with
	// the same document; the base fingerprint precondition catches any
	// divergence on the spot.
	replay := bgp.NewReplay(bgp.Config{
		Net: rg.Net, Origins: rg.Origins, Statics: rg.Statics, Export: rg.Export,
	})
	flaps := bgp.GenFlaps(*seed, *events, len(rg.Origins))
	var opsTotal int
	start := time.Now()
	for i, ev := range flaps {
		if err := replay.Toggle(ev); err != nil {
			return err
		}
		next, err := replay.Build()
		if err != nil {
			return err
		}
		ops, err := delta.Diff(eng.Net, next)
		if err != nil {
			return err
		}
		opsTotal += len(ops)
		doc := delta.Document{Base: eng.Fingerprint(), Ops: ops}
		remote, err := cli.PatchNetwork(ctx, doc)
		if err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		local, err := eng.Apply(doc)
		if err != nil {
			return fmt.Errorf("event %d locally: %w", i, err)
		}
		if remote.Fingerprint != local.Fingerprint {
			return fmt.Errorf("event %d: daemon fingerprint %s, local %s — states diverged",
				i, remote.Fingerprint, local.Fingerprint)
		}
	}
	fmt.Fprintf(stdout, "replayed %d events (%d ops) in %s; final fingerprint %.12s…\n",
		len(flaps), opsTotal, time.Since(start).Round(time.Millisecond), eng.Fingerprint())

	// Proof part 1: the daemon's accumulated trace equals the local twin's.
	remoteTrace, err := cli.FetchTrace(ctx, eng.Net)
	if err != nil {
		return err
	}
	traceOK := remoteTrace.Equal(eng.Trace)

	// Proof part 2: the incremental final coverage table byte-matches
	// the table from a from-scratch rebuild of the churned network.
	var buf bytes.Buffer
	if err := eng.Net.EncodeJSON(&buf); err != nil {
		return err
	}
	rb, err := netmodel.DecodeJSON(&buf)
	if err != nil {
		return err
	}
	rb.ComputeMatchSets()
	moved := eng.Trace.TransferTo(rb.Space)
	incTable := renderTables(eng.Net, remoteTrace)
	rbTable := renderTables(rb, moved)
	tableOK := bytes.Equal(incTable, rbTable)

	fmt.Fprintf(stdout, "\nfinal coverage (incremental, daemon trace):\n%s", incTable)
	fmt.Fprintf(stdout, "\ntrace equal: %v\ncoverage table byte-identical to rebuild: %v\n", traceOK, tableOK)
	if !tableOK {
		fmt.Fprintf(stdout, "\nrebuild table:\n%s", rbTable)
	}
	if *check && !(traceOK && tableOK) {
		return fmt.Errorf("incremental state diverged from rebuild")
	}
	return nil
}

// waitReady polls liveness — not /readyz, which stays 503 until a
// network is loaded, and loading it is this driver's own first step.
func waitReady(ctx context.Context, cli *client.Client, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		err := cli.Healthz(ctx)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not up at deadline: %w", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// renderTables renders the by-role coverage table plus the config-line
// coverage table — the byte-diff surface.
func renderTables(net *netmodel.Network, tr *core.Trace) []byte {
	cov := core.NewCoverage(net, tr)
	seen := map[netmodel.Role]bool{}
	var roles []netmodel.Role
	for _, d := range net.Devices {
		if !seen[d.Role] {
			seen[d.Role] = true
			roles = append(roles, d.Role)
		}
	}
	rows := report.ByRole(cov, roles)
	rows = append(rows, report.Total(cov, "TOTAL"))
	var buf bytes.Buffer
	report.RenderTable(&buf, rows)
	report.RenderConfig(&buf, report.ConfigCoverage(cov))
	return buf.Bytes()
}
