// Command yardstick runs a test suite against a network and reports
// coverage metrics — the end-to-end workflow of the paper's Figure 4:
// tests report what they exercise while they run, and metrics are
// computed afterwards from the coverage trace.
//
// The network is either generated (-topology example|fattree|regional)
// or loaded from JSON (-net file.json, as produced by the netgen tool).
//
// Example:
//
//	yardstick -topology regional -suite default,agg -gaps
//	yardstick -topology fattree -k 8 -suite reach,pingmesh -paths
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"yardstick"
	"yardstick/internal/dataplane"
	"yardstick/internal/obs"
)

func main() {
	// Ctrl-C / SIGTERM cancel long evaluations cleanly: suites stop
	// between tests, path walks stop mid-stream, and whatever partial
	// output was produced still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	_ = ctx

	var (
		topology = flag.String("topology", "regional", "network to generate: example, fattree, or regional")
		netFile  = flag.String("net", "", "load network from JSON instead of generating")
		k        = flag.Int("k", 8, "fat-tree arity (fattree topology)")
		bug      = flag.Bool("bug", false, "inject the null-routed default on border b2 (example topology)")
		suiteArg = flag.String("suite", "default,agg", "comma-separated tests: default, connected, internal, agg, contract, reach, pingmesh, wan, host")
		gaps     = flag.Bool("gaps", false, "print untested rules bucketed by origin and role")
		paths    = flag.Bool("paths", false, "also compute path coverage (expensive)")
		pathMax  = flag.Int("pathbudget", 200000, "maximum paths to process for path coverage (0 = unlimited)")
		detail   = flag.String("detail", "", "zoom into one device: list its partially tested rules with uncovered destinations")
		traceIn  = flag.String("trace-in", "", "load a prior coverage trace and merge it before computing metrics")
		traceOut = flag.String("trace-out", "", "write the accumulated coverage trace for future runs")
		suggest  = flag.Bool("suggest", false, "rank the known tests not in -suite by how much coverage each would add")
		genN     = flag.Int("genprobes", 0, "generate up to N concrete probes covering the remaining untested rules (ATPG-style)")
		htmlOut  = flag.String("html", "", "write a self-contained HTML coverage report to this file")
		workers  = flag.Int("workers", 1, "suite parallelism: replicate the network across N workers with private BDD spaces (0 = GOMAXPROCS, 1 = sequential)")
		minRule  = flag.Float64("min-rule", 0, "CI gate: exit 3 when fractional rule coverage is below this (0..1)")
		minIface = flag.Float64("min-iface", 0, "CI gate: exit 3 when fractional interface coverage is below this (0..1)")
		flowArg  = flag.String("flow", "", "narrow to one flow, device:dstPrefix (e.g. dc0-p0-tor0:10.0.4.0/24): report its end-to-end coverage")
		profile  = flag.Bool("profile", false, "print a span-tree profile of the run (stage timings and BDD work) to stderr")
	)
	flag.Parse()

	// -profile hangs a root span on the context: the sharded engine and
	// the BDD stat flushes attach their detail to whatever span rides
	// there, and with prof nil every instrumentation call no-ops.
	var prof *obs.Span
	if *profile {
		prof = obs.NewRoot("yardstick", obs.NewRegistry())
		ctx = obs.ContextWithSpan(ctx, prof)
	}

	bsp := prof.Child("build")
	built, err := buildNetwork(*topology, *netFile, *k, *bug)
	bsp.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "yardstick:", err)
		os.Exit(1)
	}
	net, roles := built.net, built.roles
	st := net.Stats()
	fmt.Printf("network: %d devices, %d interfaces, %d links, %d rules\n\n",
		st.Devices, st.Ifaces, st.Links, st.Rules)

	suite, err := parseSuite(*suiteArg, built)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yardstick:", err)
		os.Exit(1)
	}

	trace := yardstick.NewTrace()
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstick:", err)
			os.Exit(1)
		}
		prev, err := yardstick.DecodeTraceJSON(net, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstick:", err)
			os.Exit(1)
		}
		trace.Merge(prev)
		st := prev.Stats()
		fmt.Printf("merged prior trace: %d locations, %d inspected rules\n\n", st.Locations, st.MarkedRules)
	}
	stopWatch := net.Space.WatchContext(ctx)
	rsp := prof.Child("suite.run")
	runCtx := ctx
	if rsp != nil {
		runCtx = obs.ContextWithSpan(ctx, rsp)
	}
	runBase := net.Space.EngineStats()
	var results []yardstick.TestResult
	if *workers != 1 {
		// Parallel run: replicate the network once per worker (arena
		// clones of this space, carrying its match sets by node index),
		// shard the suite, and merge the per-worker traces back into this
		// space. Results and metrics match the sequential path exactly.
		eng, err := yardstick.NewShardedEngine(runCtx, net, yardstick.ShardedConfig{
			Workers: *workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstick:", err)
			os.Exit(1)
		}
		fmt.Printf("parallel run: %d workers\n\n", eng.Workers())
		res, err := eng.Run(runCtx, suite)
		results = res.Results
		trace.Merge(res.Trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstick: run aborted:", err)
		}
	} else if err := yardstick.GuardBudget(func() { results = suite.Run(runCtx, net, trace) }); err != nil {
		fmt.Fprintln(os.Stderr, "yardstick: run aborted:", err)
	}
	rsp.End()
	net.Space.FlushStats(rsp, prof.Registry(), runBase)
	stopWatch()
	fmt.Println("test results:")
	failed := false
	errored := false
	for _, r := range results {
		status := "PASS"
		switch {
		case r.Errored():
			status = fmt.Sprintf("ERROR (%s)", r.Err)
			errored = true
		case !r.Pass():
			status = fmt.Sprintf("FAIL (%d failures)", len(r.Failures))
			failed = true
		}
		fmt.Printf("  %-24s %-18s %6d checks  %s\n", r.Name, r.Kind, r.Checks, status)
		for i, f := range r.Failures {
			if i == 5 {
				fmt.Printf("    ... %d more\n", len(r.Failures)-5)
				break
			}
			fmt.Printf("    %s: %s\n", net.Device(f.Device).Name, f.Detail)
		}
	}
	fmt.Println()

	csp := prof.Child("coverage")
	covBase := net.Space.EngineStats()
	cov := yardstick.NewCoverage(net, trace)
	rows := yardstick.ReportByRole(cov, roles)
	rows = append(rows, yardstick.ReportTotal(cov, "TOTAL"))
	csp.End()
	net.Space.FlushStats(csp, prof.Registry(), covBase)
	fmt.Println("coverage:")
	yardstick.RenderTable(os.Stdout, rows)

	if *paths {
		fmt.Println()
		psp := prof.Child("paths")
		pathBase := net.Space.EngineStats()
		res := yardstick.PathCoverage(ctx, cov, nil, dataplane.EnumOpts{MaxPaths: *pathMax}, yardstick.Fractional)
		psp.End()
		net.Space.FlushStats(psp, prof.Registry(), pathBase)
		complete := "complete"
		if !res.Complete {
			complete = "budget exhausted"
		}
		fmt.Printf("path coverage (fractional): %.1f%% over %d paths (%s)\n",
			100*res.Value, res.Paths, complete)
	}

	if *flowArg != "" {
		devName, prefix, ok := strings.Cut(*flowArg, ":")
		if !ok {
			fmt.Fprintln(os.Stderr, "yardstick: -flow wants device:dstPrefix")
			os.Exit(1)
		}
		dev, found := net.DeviceByName(devName)
		if !found {
			fmt.Fprintf(os.Stderr, "yardstick: no device %q\n", devName)
			os.Exit(1)
		}
		p, err := netip.ParsePrefix(prefix)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yardstick: bad prefix %q: %v\n", prefix, err)
			os.Exit(1)
		}
		flow := net.Space.DstPrefix(p)
		fmt.Println()
		fmt.Printf("flow coverage (%s -> %s, end-to-end): %.1f%%\n",
			devName, p, 100*yardstick.FlowCoverage(cov, yardstick.Injected(dev.ID), flow))
	}

	if *gaps {
		fmt.Println()
		fmt.Println("testing gaps (untested rules):")
		yardstick.RenderGaps(os.Stdout, yardstick.ReportGaps(cov))
	}

	if *detail != "" {
		dev, ok := net.DeviceByName(*detail)
		if !ok {
			fmt.Fprintf(os.Stderr, "yardstick: no device %q\n", *detail)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Printf("zoom-in: partially tested rules on %s:\n", dev.Name)
		rows := yardstick.UncoveredDetail(cov, yardstick.RulesOfDevices(net, []yardstick.DeviceID{dev.ID}), 6)
		yardstick.RenderUncoveredDetail(os.Stdout, rows)
	}

	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstick:", err)
			os.Exit(1)
		}
		rep := yardstick.BuildHTMLReport(cov, "Yardstick coverage report", roles, 40)
		if err := rep.RenderHTML(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "yardstick:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote HTML report to %s\n", *htmlOut)
	}

	if *suggest {
		var candidates yardstick.Suite
		names := []string{"default", "connected", "internal", "agg", "contract", "host"}
		if built.regional != nil {
			names = append(names, "wan")
		}
		for _, name := range names {
			if strings.Contains(*suiteArg, name) {
				continue
			}
			s, err := parseSuite(name, built)
			if err == nil {
				candidates = append(candidates, s...)
			}
		}
		fmt.Println()
		fmt.Println("suggested next tests (by marginal rule-coverage gain):")
		for _, r := range yardstick.RankCandidates(ctx, net, trace, candidates, yardstick.Fractional) {
			fmt.Printf("  %-24s +%5.1f%% -> %5.1f%%\n", r.Test.Name(), 100*r.Gain, 100*r.Coverage)
		}
	}

	if *genN > 0 {
		res := yardstick.GenerateProbes(ctx, cov, yardstick.ProbeGenOptions{MaxProbes: *genN})
		fmt.Println()
		fmt.Printf("generated probes (%d, covering %s):\n", len(res.Probes), "previously untested rules")
		for _, p := range res.Probes {
			fmt.Printf("  inject at %-20s %-54s -> %-10s covers %d rules\n",
				net.Device(p.Start.Device).Name, p.Packet, p.End, len(p.Covers))
		}
		if len(res.Uncoverable) > 0 {
			fmt.Printf("  %d rules unreachable from the edge (need local tests or state inspection)\n", len(res.Uncoverable))
		}
		if res.Remaining > 0 {
			fmt.Printf("  %d untested rules remain (probe budget exhausted; raise -genprobes)\n", res.Remaining)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yardstick:", err)
			os.Exit(1)
		}
		if err := trace.EncodeJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "yardstick:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote coverage trace to %s\n", *traceOut)
	}

	if prof != nil {
		prof.End()
		fmt.Fprintln(os.Stderr)
		obs.WriteFlame(os.Stderr, prof)
	}

	if failed {
		os.Exit(2)
	}
	if errored {
		// Errored tests never vouch for the network: distinct exit code
		// so CI can tell "tests failed" from "tests did not finish".
		os.Exit(4)
	}

	// Coverage gates: like software coverage thresholds in CI, a suite
	// that passes but covers too little fails the build.
	gateFailed := false
	if *minRule > 0 {
		if got := yardstick.RuleCoverage(cov, nil, yardstick.Fractional); got < *minRule {
			fmt.Fprintf(os.Stderr, "yardstick: rule coverage %.1f%% below gate %.1f%%\n", 100*got, 100**minRule)
			gateFailed = true
		}
	}
	if *minIface > 0 {
		if got := yardstick.InterfaceCoverage(cov, nil, yardstick.Fractional); got < *minIface {
			fmt.Fprintf(os.Stderr, "yardstick: interface coverage %.1f%% below gate %.1f%%\n", 100*got, 100**minIface)
			gateFailed = true
		}
	}
	if gateFailed {
		os.Exit(3)
	}
}

// builtNetwork carries the network plus the generator metadata some
// tests need (the WAN route specification for WideAreaRouteCheck).
type builtNetwork struct {
	net      *yardstick.Network
	roles    []yardstick.Role
	regional *yardstick.RegionalNet // nil unless -topology regional
}

func buildNetwork(topology, netFile string, k int, bug bool) (*builtNetwork, error) {
	if netFile != "" {
		f, err := os.Open(netFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var net *yardstick.Network
		if strings.HasSuffix(netFile, ".txt") {
			net, err = yardstick.ParseNetworkText(f)
		} else {
			net, err = yardstick.DecodeNetworkJSON(f)
		}
		if err != nil {
			return nil, err
		}
		return &builtNetwork{net: net, roles: rolesOf(net)}, nil
	}
	switch topology {
	case "example":
		ex, err := yardstick.BuildExample(yardstick.ExampleOpts{BugNullRoute: bug})
		if err != nil {
			return nil, err
		}
		return &builtNetwork{net: ex.Net,
			roles: []yardstick.Role{yardstick.RoleLeaf, yardstick.RoleSpine, yardstick.RoleBorder}}, nil
	case "fattree":
		ft, err := yardstick.BuildFatTree(k)
		if err != nil {
			return nil, err
		}
		return &builtNetwork{net: ft.Net,
			roles: []yardstick.Role{yardstick.RoleToR, yardstick.RoleAgg, yardstick.RoleCore}}, nil
	case "regional":
		rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{})
		if err != nil {
			return nil, err
		}
		return &builtNetwork{net: rg.Net, regional: rg,
			roles: []yardstick.Role{yardstick.RoleToR, yardstick.RoleAgg, yardstick.RoleSpine, yardstick.RoleHub}}, nil
	}
	return nil, fmt.Errorf("unknown topology %q", topology)
}

func rolesOf(net *yardstick.Network) []yardstick.Role {
	seen := map[yardstick.Role]bool{}
	var out []yardstick.Role
	for _, d := range net.Devices {
		if !seen[d.Role] {
			seen[d.Role] = true
			out = append(out, d.Role)
		}
	}
	return out
}

func parseSuite(arg string, built *builtNetwork) (yardstick.Suite, error) {
	var suite yardstick.Suite
	var rest []string
	for _, name := range strings.Split(arg, ",") {
		if strings.TrimSpace(name) == "wan" {
			if built.regional == nil {
				return nil, fmt.Errorf("the wan test needs -topology regional (it uses the generator's WAN route specification)")
			}
			suite = append(suite, yardstick.WideAreaRouteCheck{
				Prefixes:   built.regional.WANPrefixes,
				WANDevices: built.regional.WANHubs,
			})
			continue
		}
		rest = append(rest, name)
	}
	if len(rest) > 0 {
		more, err := yardstick.BuiltinSuite(strings.Join(rest, ","))
		if err != nil {
			return nil, err
		}
		suite = append(suite, more...)
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("empty test suite")
	}
	return suite, nil
}
