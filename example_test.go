package yardstick_test

import (
	"context"
	"fmt"
	"net/netip"

	"yardstick"
)

// Example shows the full Yardstick workflow: generate a network, run a
// test suite that reports coverage, and compute metrics from the trace.
func Example() {
	rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{})
	if err != nil {
		panic(err)
	}
	trace := yardstick.NewTrace()
	suite := yardstick.Suite{
		yardstick.DefaultRouteCheck{},
		yardstick.InternalRouteCheck{},
		yardstick.ConnectedRouteCheck{},
	}
	for _, res := range suite.Run(context.Background(), rg.Net, trace) {
		fmt.Printf("%s: pass=%v\n", res.Name, res.Pass())
	}
	cov := yardstick.NewCoverage(rg.Net, trace)
	fmt.Printf("rule coverage: %.1f%%\n", 100*yardstick.RuleCoverage(cov, nil, yardstick.Fractional))
	// Output:
	// DefaultRouteCheck: pass=true
	// InternalRouteCheck: pass=true
	// ConnectedRouteCheck: pass=true
	// rule coverage: 89.3%
}

// ExampleRuleCoverage shows Algorithm 1 at the smallest scale: a state
// inspection covers a rule's full match set, a behavioral test covers the
// packets it used.
func ExampleRuleCoverage() {
	net := yardstick.NewNetwork()
	r1 := net.AddDevice("r1", yardstick.RoleLeaf, 65001)
	up := net.AddEdgeIface(r1, "up", netip.Prefix{})
	net.AddFIBRule(r1,
		func() yardstick.Match {
			m := yardstick.MatchAll()
			m.DstPrefix = netip.MustParsePrefix("10.0.0.0/8")
			return m
		}(),
		yardstick.Action{Kind: yardstick.ActForward, OutIfaces: []yardstick.IfaceID{up}},
		yardstick.OriginInternal)
	net.ComputeMatchSets()

	// A behavioral test that exercised half of 10/8.
	trace := yardstick.NewTrace()
	trace.MarkPacket(yardstick.Injected(r1), net.Space.DstPrefix(netip.MustParsePrefix("10.0.0.0/9")))
	cov := yardstick.NewCoverage(net, trace)
	fmt.Printf("behavioral: %.0f%%\n", 100*yardstick.RuleCoverage(cov, nil, yardstick.Simple))

	// A state inspection covers the whole rule.
	trace2 := yardstick.NewTrace()
	trace2.MarkRule(0)
	cov2 := yardstick.NewCoverage(net, trace2)
	fmt.Printf("inspection: %.0f%%\n", 100*yardstick.RuleCoverage(cov2, nil, yardstick.Simple))
	// Output:
	// behavioral: 50%
	// inspection: 100%
}

// ExampleTraceroute follows one concrete packet through the Figure 1
// network.
func ExampleTraceroute() {
	ex, err := yardstick.BuildExample(yardstick.ExampleOpts{})
	if err != nil {
		panic(err)
	}
	tr := yardstick.Traceroute(ex.Net, yardstick.Injected(ex.Leaves[0]), yardstick.Packet{
		Dst:   netip.MustParseAddr("10.0.1.7"), // leaf 2's subnet
		Src:   netip.MustParseAddr("10.0.0.9"),
		Proto: 1,
	})
	for _, hop := range tr.Hops {
		fmt.Println(ex.Net.Device(hop.Loc.Device).Name)
	}
	fmt.Println(tr.End)
	// Output:
	// l1
	// s2
	// l2
	// egressed
}

// ExampleRankCandidates reproduces the case study's test development
// loop: rank candidate tests by the coverage they would add.
func ExampleRankCandidates() {
	rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{})
	if err != nil {
		panic(err)
	}
	base := yardstick.NewTrace()
	yardstick.Suite{yardstick.DefaultRouteCheck{}, yardstick.AggCanReachTorLoopback{}}.Run(context.Background(), rg.Net, base)

	ranked := yardstick.RankCandidates(context.Background(), rg.Net, base, []yardstick.Test{
		yardstick.ConnectedRouteCheck{},
		yardstick.InternalRouteCheck{},
	}, yardstick.Fractional)
	for _, r := range ranked {
		fmt.Printf("%s +%.1f%%\n", r.Test.Name(), 100*r.Gain)
	}
	// Output:
	// InternalRouteCheck +73.9%
	// ConnectedRouteCheck +8.4%
}
