package yardstick_test

import (
	"context"
	"bytes"
	"math"
	"net/netip"
	"testing"

	"yardstick"
)

// TestPublicAPIWorkflow exercises the whole documented workflow through
// the facade: generate, test, measure, drill down.
func TestPublicAPIWorkflow(t *testing.T) {
	rg, err := yardstick.BuildRegional(yardstick.RegionalOpts{
		DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2, SpinesPerDC: 2, Hubs: 2, WANHubs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := yardstick.NewTrace()
	suite := yardstick.Suite{
		yardstick.DefaultRouteCheck{},
		yardstick.InternalRouteCheck{},
		yardstick.ConnectedRouteCheck{},
		yardstick.ToRPingmesh{},
	}
	for _, res := range suite.Run(context.Background(), rg.Net, trace) {
		if !res.Pass() {
			t.Fatalf("%s failed: %+v", res.Name, res.Failures[0])
		}
	}
	cov := yardstick.NewCoverage(rg.Net, trace)

	rule := yardstick.RuleCoverage(cov, nil, yardstick.Fractional)
	dev := yardstick.DeviceCoverage(cov, nil, yardstick.Fractional)
	ifc := yardstick.InterfaceCoverage(cov, nil, yardstick.Fractional)
	if rule <= 0 || rule > 1 || dev != 1 || ifc <= 0 || ifc > 1 {
		t.Errorf("metrics out of expectation: rule=%v dev=%v if=%v", rule, dev, ifc)
	}

	// Role filters and report rendering.
	rows := yardstick.ReportByRole(cov, []yardstick.Role{yardstick.RoleToR, yardstick.RoleHub})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	yardstick.RenderTable(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}

	// Gap drill-down still sees the wide-area hole.
	gaps := yardstick.ReportGaps(cov)
	foundWAN := false
	for _, g := range gaps {
		if g.Origin == yardstick.OriginWideArea {
			foundWAN = true
		}
	}
	if !foundWAN {
		t.Error("wide-area gap not reported")
	}
}

func TestPublicAPIPathAndFlow(t *testing.T) {
	ex, err := yardstick.BuildExample(yardstick.ExampleOpts{Leaves: 2})
	if err != nil {
		t.Fatal(err)
	}
	net := ex.Net
	trace := yardstick.NewTrace()
	src, dst := ex.Leaves[0], ex.Leaves[1]
	flow := net.Space.DstPrefix(ex.LeafPrefix[dst])

	res := yardstick.ReachabilityTest{
		From: src, Pkts: flow,
		WantEgress: []yardstick.IfaceID{ex.LeafIface[dst]},
		Waypoint:   -1,
	}.Run(net, trace)
	if !res.Pass() {
		t.Fatal("reachability failed")
	}

	cov := yardstick.NewCoverage(net, trace)
	if got := yardstick.FlowCoverage(cov, yardstick.Injected(src), flow); math.Abs(got-1) > 1e-9 {
		t.Errorf("flow coverage = %v, want 1", got)
	}
	pc := yardstick.PathCoverage(context.Background(), cov, nil, yardstick.EnumOpts{}, yardstick.Fractional)
	if !pc.Complete || pc.Paths == 0 {
		t.Fatalf("path coverage: %+v", pc)
	}

	// CoFlow: two flows, one tested and one not → coverage strictly
	// between 0 and 1, weighted by flow path sizes.
	other := net.Space.DstPrefix(ex.LeafPrefix[src])
	co := yardstick.CoFlowCoverage(cov, []yardstick.Flow{
		{Start: yardstick.Injected(src), Pkts: flow},
		{Start: yardstick.Injected(dst), Pkts: other},
	})
	if co <= 0 || co >= 1 {
		t.Errorf("coflow coverage = %v, want in (0,1)", co)
	}
}

func TestPublicAPICustomSpec(t *testing.T) {
	ex, err := yardstick.BuildExample(yardstick.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	net := ex.Net
	trace := yardstick.NewTrace()
	// Inspect every border rule.
	b1, _ := net.DeviceByName("b1")
	for _, rid := range net.DeviceRules(b1.ID) {
		trace.MarkRule(rid)
	}
	cov := yardstick.NewCoverage(net, trace)

	var g []yardstick.GuardedString
	for _, rid := range net.DeviceRules(b1.ID) {
		g = append(g, yardstick.GuardedString{Rules: []yardstick.RuleID{rid}})
	}
	spec := yardstick.Spec{
		Name:    "b1-min",
		G:       g,
		Measure: yardstick.FractionMeasure,
		Combine: yardstick.CombineMin,
	}
	if got := yardstick.ComponentCoverage(cov, spec); got != 1 {
		t.Errorf("fully inspected device min coverage = %v, want 1", got)
	}
	// The per-component builders agree.
	if got := yardstick.ComponentCoverage(cov, yardstick.DeviceSpec(net, b1.ID)); got != 1 {
		t.Errorf("device spec coverage = %v, want 1", got)
	}
}

func TestPublicAPIJSONRoundTrip(t *testing.T) {
	ft, err := yardstick.BuildFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ft.Net.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	net2, err := yardstick.DecodeNetworkJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if net2.Stats() != ft.Net.Stats() {
		t.Fatalf("stats mismatch: %+v vs %+v", net2.Stats(), ft.Net.Stats())
	}
	// The decoded network is fully usable: run a suite and metrics.
	trace := yardstick.NewTrace()
	res := yardstick.ToRContract{}.Run(net2, trace)
	if !res.Pass() {
		t.Fatalf("suite on decoded network failed: %+v", res.Failures[0])
	}
	cov := yardstick.NewCoverage(net2, trace)
	if yardstick.RuleCoverage(cov, nil, yardstick.Fractional) <= 0 {
		t.Error("no coverage on decoded network")
	}
}

func TestPublicAPIDataplane(t *testing.T) {
	ex, err := yardstick.BuildExample(yardstick.ExampleOpts{})
	if err != nil {
		t.Fatal(err)
	}
	net := ex.Net
	// Symbolic flood.
	r, err := yardstick.Reach(net, yardstick.Injected(ex.Leaves[0]),
		net.Space.DstPrefix(ex.LeafPrefix[ex.Leaves[1]]), yardstick.ReachOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Egressed) == 0 {
		t.Error("no egress")
	}
	// Concrete traceroute.
	tr := yardstick.Traceroute(net, yardstick.Injected(ex.Leaves[0]), yardstick.Packet{
		Dst: ex.LeafPrefix[ex.Leaves[1]].Addr().Next(),
		Src: netip.MustParseAddr("10.0.0.1"),
	})
	if tr.End != yardstick.TraceEgressed {
		t.Errorf("trace end = %v", tr.End)
	}
	// Path enumeration through the facade.
	n, complete := yardstick.EnumeratePaths(context.Background(), net, yardstick.EdgeStarts(net), yardstick.EnumOpts{}, func(p yardstick.Path) bool {
		return true
	})
	if n == 0 || !complete {
		t.Errorf("paths = %d complete = %v", n, complete)
	}
}

func TestPublicAPIHandBuiltBGP(t *testing.T) {
	net := yardstick.NewNetwork()
	a := net.AddDevice("a", yardstick.RoleLeaf, 65001)
	b := net.AddDevice("b", yardstick.RoleSpine, 65002)
	net.Connect(a, b, netip.MustParsePrefix("10.255.0.0/31"))
	p := netip.MustParsePrefix("10.9.0.0/24")
	host := net.AddEdgeIface(a, "h", p)
	if _, err := yardstick.RunBGP(yardstick.BGPConfig{
		Net: net,
		Origins: []yardstick.Origination{
			{Device: a, Prefix: p, Origin: yardstick.OriginInternal, EdgeIface: host},
		},
	}); err != nil {
		t.Fatal(err)
	}
	net.ComputeMatchSets()
	r, err := yardstick.Reach(net, yardstick.Injected(b), net.Space.DstPrefix(p), yardstick.ReachOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Egressed[host]; got.Space() == nil || !got.Equal(net.Space.DstPrefix(p)) {
		t.Error("hand-built network does not forward")
	}
}
