GO ?= go

.PHONY: all vet build test race bench profile loadproof clustersmoke churnsmoke ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector gates every PR: the service serializes a
# single-threaded BDD manager behind a mutex, and the concurrent
# service tests exist to catch lock-discipline regressions.
race:
	$(GO) test -race ./...

# Benchmark the evaluation engine and the BDD kernel, recording the
# numbers (with allocation counts) as a committed JSON artifact.
# Separate steps so a failing benchmark run stops make instead of
# feeding an error transcript into the parser; benchfmt stamps the host
# core count into the artifact, which is what makes the workers=N
# numbers interpretable (no speedup is expected on 1 core), and -delta
# prints an advisory comparison against the previously committed
# numbers before overwriting them.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSuiteParallel|BenchmarkSnapshotClone|BenchmarkComputeMatchSets|BenchmarkChurn' -benchmem -count 3 -timeout 30m . > bench.out
	$(GO) test -run '^$$' -bench BenchmarkBDD -benchmem -count 3 -timeout 15m ./internal/bdd >> bench.out
	$(GO) run ./cmd/benchfmt -delta BENCH_eval.json -o BENCH_eval.json < bench.out
	@rm -f bench.out
	@cat BENCH_eval.json

# Archive a span-tree profile of the regional-Clos suite (the flame
# report -profile prints to stderr) so perf work has a committed-able
# before/after stage breakdown to diff against.
profile:
	$(GO) run ./cmd/yardstick -topology regional -suite default,internal,reach,pingmesh -workers 4 -profile 2> profile.txt > /dev/null
	@cat profile.txt

# Regenerate the admission-layer load proof: boot the daemon with a
# deliberately tiny envelope (queue depth 8, 4 in-flight), drive it at
# 250 RPS of heavy 8-suite jobs for 10s — far past the drain rate — and
# record the accepted/shed accounting plus latency quantiles. -check
# fails the target if anything other than 2xx or Retry-After-carrying
# sheds came back.
loadproof:
	$(GO) build -o /tmp/yardstickd ./cmd/yardstickd
	$(GO) build -o /tmp/loadgen ./cmd/loadgen
	/tmp/yardstickd -listen 127.0.0.1:18080 -topology regional -queue-depth 8 -max-inflight 4 & \
	DPID=$$!; \
	for i in $$(seq 1 50); do curl -sf http://127.0.0.1:18080/readyz > /dev/null && break; sleep 0.2; done; \
	/tmp/loadgen -addr http://127.0.0.1:18080 -rps 250 -duration 10s \
		-suites default,connected,internal,agg,contract,reach,pingmesh,host \
		-check -out BENCH_service.json; \
	rc=$$?; kill $$DPID; exit $$rc
	@cat BENCH_service.json

# Chaos-prove the distributed path locally: three workers, one killed
# mid-run, coordinator must exit 0 with a coverage table byte-identical
# to the single-node sequential baseline (same recipe as the CI
# cluster-smoke job).
clustersmoke:
	$(GO) build -o /tmp/yardstickd ./cmd/yardstickd
	$(GO) build -o /tmp/yardstick ./cmd/yardstick
	$(GO) build -o /tmp/yardstick-coord ./cmd/yardstick-coord
	$(GO) build -o /tmp/promlint ./cmd/promlint
	/tmp/yardstickd -listen 127.0.0.1:18081 & W1=$$!; \
	/tmp/yardstickd -listen 127.0.0.1:18082 > w2.log 2>&1 & W2=$$!; \
	/tmp/yardstickd -listen 127.0.0.1:18083 & W3=$$!; \
	trap "kill $$W1 $$W3 2>/dev/null || true" EXIT; \
	for p in 18081 18082 18083; do \
		for i in $$(seq 1 50); do curl -sf http://127.0.0.1:$$p/healthz > /dev/null && break; sleep 0.2; done; \
	done; \
	/tmp/yardstick -topology regional -suite default,internal,contract > baseline.out; \
	sed -n '/^coverage:/,$$p' baseline.out | sed '/^$$/d' > baseline.cov; \
	/tmp/yardstick-coord \
		-nodes http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083 \
		-suite default,internal,contract -rounds 120 -concurrency 3 -poll 25ms \
		-fail-threshold 2 -cooldown 1s -hedge-after 2s \
		-metrics-addr 127.0.0.1:19090 -scrape-interval 250ms \
		-report cluster-report.json > cluster.out & CPID=$$!; \
	for i in $$(seq 1 100); do \
		curl -sf http://127.0.0.1:19090/metrics > coord-metrics.txt \
			&& grep -q 'node="http://127.0.0.1:18082"' coord-metrics.txt && break; sleep 0.1; \
	done; \
	/tmp/promlint < coord-metrics.txt; \
	grep -q 'yardstick_coord_dispatch_total' coord-metrics.txt || { echo "no native coord metrics"; exit 1; }; \
	for i in $$(seq 1 200); do \
		n=$$(grep -c 'method=POST path=/jobs ' w2.log || true); \
		[ "$$n" -ge 20 ] && break; sleep 0.05; \
	done; \
	kill -9 $$W2; \
	rc=0; wait $$CPID || rc=$$?; \
	test $$rc -eq 0 || { echo "coordinator exited $$rc"; exit $$rc; }; \
	awk '/^coverage:/{f=1} /^wrote run report/{f=0} f' cluster.out | sed '/^$$/d' > cluster.cov; \
	diff baseline.cov cluster.cov; \
	grep -Eq '"trips": [1-9]' cluster-report.json || { echo "kill was not observed: no breaker trip"; exit 1; }; \
	grep -q '"timeline"' cluster-report.json || { echo "report has no run timeline"; exit 1; }; \
	echo "cluster == single-node: exact (1 worker SIGKILLed mid-run; fleet /metrics lint-clean)"; \
	rm -f baseline.out baseline.cov cluster.out cluster.cov cluster-report.json coord-metrics.txt w2.log

# Prove incremental coverage stays exact under churn: replay a seeded
# 50-event BGP flap schedule against a live daemon via PATCH /network
# (lockstep with a local twin), then byte-diff the final coverage table
# against a from-scratch rebuild and require the daemon trace to equal
# the local one exactly (same recipe as the CI churn-smoke job).
churnsmoke:
	$(GO) build -o /tmp/yardstickd ./cmd/yardstickd
	$(GO) build -o /tmp/churn ./cmd/churn
	/tmp/yardstickd -listen 127.0.0.1:18084 & DPID=$$!; \
	trap "kill $$DPID 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 50); do curl -sf http://127.0.0.1:18084/healthz > /dev/null && break; sleep 0.2; done; \
	/tmp/churn -addr http://127.0.0.1:18084 -events 50 -seed 1 -check

ci: vet build race
