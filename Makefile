GO ?= go

.PHONY: all vet build test race bench profile ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector gates every PR: the service serializes a
# single-threaded BDD manager behind a mutex, and the concurrent
# service tests exist to catch lock-discipline regressions.
race:
	$(GO) test -race ./...

# Benchmark the evaluation engine and the BDD kernel, recording the
# numbers (with allocation counts) as a committed JSON artifact.
# Separate steps so a failing benchmark run stops make instead of
# feeding an error transcript into the parser; benchfmt stamps the host
# core count into the artifact, which is what makes the workers=N
# numbers interpretable (no speedup is expected on 1 core), and -delta
# prints an advisory comparison against the previously committed
# numbers before overwriting them.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSuiteParallel|BenchmarkComputeMatchSets' -benchmem -count 3 -timeout 30m . > bench.out
	$(GO) test -run '^$$' -bench BenchmarkBDD -benchmem -count 3 -timeout 15m ./internal/bdd >> bench.out
	$(GO) run ./cmd/benchfmt -delta BENCH_eval.json -o BENCH_eval.json < bench.out
	@rm -f bench.out
	@cat BENCH_eval.json

# Archive a span-tree profile of the regional-Clos suite (the flame
# report -profile prints to stderr) so perf work has a committed-able
# before/after stage breakdown to diff against.
profile:
	$(GO) run ./cmd/yardstick -topology regional -suite default,internal,reach,pingmesh -workers 4 -profile 2> profile.txt > /dev/null
	@cat profile.txt

ci: vet build race
