GO ?= go

.PHONY: all vet build test race ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector gates every PR: the service serializes a
# single-threaded BDD manager behind a mutex, and the concurrent
# service tests exist to catch lock-discipline regressions.
race:
	$(GO) test -race ./...

ci: vet build race
