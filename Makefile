GO ?= go

.PHONY: all vet build test race bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector gates every PR: the service serializes a
# single-threaded BDD manager behind a mutex, and the concurrent
# service tests exist to catch lock-discipline regressions.
race:
	$(GO) test -race ./...

# Benchmark the sharded evaluation engine and record the numbers as a
# committed JSON artifact. Two steps so a failing benchmark run stops
# make instead of feeding an error transcript into the parser; benchfmt
# stamps the host core count into the artifact, which is what makes the
# workers=N numbers interpretable (no speedup is expected on 1 core).
bench:
	$(GO) test -run '^$$' -bench BenchmarkSuiteParallel -timeout 20m . > bench.out
	$(GO) run ./cmd/benchfmt -o BENCH_eval.json < bench.out
	@rm -f bench.out
	@cat BENCH_eval.json

ci: vet build race
