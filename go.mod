module yardstick

go 1.22
