// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per figure, plus micro-benchmarks for the pieces whose cost the paper
// discusses (tracking calls, covered-set computation, path enumeration).
//
//	go test -bench=. -benchmem
//
// Figure 8's tracked-vs-baseline comparison appears here as paired
// sub-benchmarks (…/tracking=off vs …/tracking=on); Figure 9's metric
// timings as one sub-benchmark per metric. Larger fat-trees than the
// defaults can be driven through cmd/experiments.
package yardstick_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"bytes"
	"yardstick"

	"yardstick/internal/core"
	"yardstick/internal/dataplane"
	"yardstick/internal/delta"
	"yardstick/internal/experiments"
	"yardstick/internal/netmodel"
	"yardstick/internal/probegen"
	"yardstick/internal/sharded"
	"yardstick/internal/testkit"
	"yardstick/internal/topogen"
)

// Networks are expensive to build; cache them per configuration. The BDD
// caches they carry warm up during the first iterations, which
// b.ResetTimer-guarded warmup runs absorb.
var (
	netMu    sync.Mutex
	fatTrees = map[int]*topogen.FatTree{}
	regional *topogen.Regional
)

func fatTree(b *testing.B, k int) *topogen.FatTree {
	b.Helper()
	netMu.Lock()
	defer netMu.Unlock()
	if ft, ok := fatTrees[k]; ok {
		return ft
	}
	ft, err := topogen.BuildFatTree(k)
	if err != nil {
		b.Fatal(err)
	}
	fatTrees[k] = ft
	return ft
}

func regionalNet(b *testing.B) *topogen.Regional {
	b.Helper()
	netMu.Lock()
	defer netMu.Unlock()
	if regional == nil {
		rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
		if err != nil {
			b.Fatal(err)
		}
		regional = rg
	}
	return regional
}

// BenchmarkFigure6 runs each case-study panel: suite execution plus the
// by-role metric computation.
func BenchmarkFigure6(b *testing.B) {
	rg := regionalNet(b)
	panels := []struct {
		name  string
		suite testkit.Suite
	}{
		{"6a-original", experiments.OriginalSuite()},
		{"6b-internal", testkit.Suite{testkit.InternalRouteCheck{}}},
		{"6c-connected", testkit.Suite{testkit.ConnectedRouteCheck{}}},
		{"6d-final", experiments.FinalSuite()},
	}
	for _, p := range panels {
		b.Run(p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.Figure6(context.Background(), rg, p.name, p.suite)
			}
		})
	}
}

// BenchmarkFigure7 measures the three suite iterations with aggregate
// metrics.
func BenchmarkFigure7(b *testing.B) {
	rg := regionalNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure7(context.Background(), rg)
	}
}

// BenchmarkFigure8 is the tracking-overhead comparison: each §8 test type
// with tracking off (core.Nop) and on (core.Trace), per fat-tree size.
func BenchmarkFigure8(b *testing.B) {
	for _, k := range []int{4, 8} {
		ft := fatTree(b, k)
		for _, test := range experiments.Figure8Tests() {
			test.Run(ft.Net, core.Nop{}) // warm caches
			b.Run(fmt.Sprintf("%s/k=%d/tracking=off", test.Name(), k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					test.Run(ft.Net, core.Nop{})
				}
			})
			b.Run(fmt.Sprintf("%s/k=%d/tracking=on", test.Name(), k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					test.Run(ft.Net, core.NewTrace())
				}
			})
		}
	}
}

// BenchmarkFigure9 times each metric computed from a realistic trace.
func BenchmarkFigure9(b *testing.B) {
	for _, k := range []int{4, 8} {
		ft := fatTree(b, k)
		trace := core.NewTrace()
		for _, test := range experiments.Figure8Tests() {
			test.Run(ft.Net, trace)
		}
		metrics := []struct {
			name string
			f    func(c *core.Coverage)
		}{
			{"device", func(c *core.Coverage) { core.DeviceCoverage(c, nil, core.Fractional) }},
			{"interface", func(c *core.Coverage) { core.InterfaceCoverage(c, nil, core.Fractional) }},
			{"rule", func(c *core.Coverage) { core.RuleCoverage(c, nil, core.Fractional) }},
			{"path", func(c *core.Coverage) {
				core.PathCoverage(context.Background(), c, nil, dataplane.EnumOpts{MaxPaths: 100000}, core.Fractional)
			}},
		}
		for _, m := range metrics {
			b.Run(fmt.Sprintf("%s/k=%d", m.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					// A fresh Coverage per iteration so per-rule caches
					// don't turn later iterations into no-ops.
					m.f(core.NewCoverage(ft.Net, trace))
				}
			})
		}
	}
}

// BenchmarkMarkPacket measures the online tracking call itself — the §5.1
// API whose overhead Figure 8 bounds.
func BenchmarkMarkPacket(b *testing.B) {
	ft := fatTree(b, 4)
	trace := core.NewTrace()
	sets := make([]yardstick.Set, 64)
	for i := range sets {
		tor := ft.ToRs[i%len(ft.ToRs)]
		sets[i] = ft.Net.Space.DstPrefix(ft.HostPrefix[tor])
	}
	loc := dataplane.Injected(ft.ToRs[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.MarkPacket(loc, sets[i%len(sets)])
	}
}

// BenchmarkCoveredSets measures Algorithm 1 over a full network.
func BenchmarkCoveredSets(b *testing.B) {
	ft := fatTree(b, 8)
	trace := core.NewTrace()
	testkit.ToRReachability{}.Run(ft.Net, trace)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.NewCoverage(ft.Net, trace)
		for _, r := range ft.Net.Rules {
			c.Covered(r.ID)
		}
	}
}

// BenchmarkPathEnumeration measures the §5.2 Step 3 DFS on its own.
func BenchmarkPathEnumeration(b *testing.B) {
	ft := fatTree(b, 6)
	starts := dataplane.EdgeStarts(ft.Net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := dataplane.EnumeratePaths(context.Background(), ft.Net, starts, dataplane.EnumOpts{}, func(dataplane.Path) bool { return true })
		if n == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkBGPConvergence measures the control-plane substrate.
func BenchmarkBGPConvergence(b *testing.B) {
	for _, k := range []int{4, 8} {
		b.Run(fmt.Sprintf("fattree/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := topogen.BuildFatTree(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFamily compares per-family costs: the same regional
// workload in the 104-bit IPv4 space vs the 296-bit IPv6 space.
func BenchmarkAblationFamily(b *testing.B) {
	opts := topogen.RegionalOpts{DCs: 1, PodsPerDC: 1, ToRsPerPod: 2, AggsPerPod: 2,
		SpinesPerDC: 2, Hubs: 2, WANHubs: 1, WANPrefixes: 4}
	for _, v6 := range []bool{false, true} {
		o := opts
		o.IPv6 = v6
		name := "family=v4"
		if v6 {
			name = "family=v6"
		}
		b.Run(name+"/build", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := topogen.BuildRegional(o); err != nil {
					b.Fatal(err)
				}
			}
		})
		rg, err := topogen.BuildRegional(o)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/suite", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				trace := core.NewTrace()
				testkit.Suite{testkit.DefaultRouteCheck{}, testkit.InternalRouteCheck{}}.Run(context.Background(), rg.Net, trace)
				core.RuleCoverage(core.NewCoverage(rg.Net, trace), nil, core.Fractional)
			}
		})
	}
}

// BenchmarkTraceJSON measures trace persistence round trips.
func BenchmarkTraceJSON(b *testing.B) {
	ft := fatTree(b, 6)
	trace := core.NewTrace()
	testkit.ToRReachability{}.Run(ft.Net, trace)
	var buf bytes.Buffer
	if err := trace.EncodeJSON(&buf); err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := trace.EncodeJSON(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DecodeTraceJSON(ft.Net, bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSuiteParallel measures the sharded evaluation engine on the
// regional Clos network: the full built-in suite run sequentially and
// through worker pools of 1, 2, and 4. Engine construction (replica
// building) happens outside the timer — the steady-state cost of a
// long-lived pool is what matters for the service deployment. Speedup
// over sequential requires real cores; `make bench` records the host
// core count next to each number so results are interpretable (on a
// single-core host the workers=N variants only add merge overhead).
func BenchmarkSuiteParallel(b *testing.B) {
	ctx := context.Background()
	suite, err := testkit.BuiltinSuite("default,connected,internal,agg,contract,reach,pingmesh,host")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("sequential", func(b *testing.B) {
		rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
		if err != nil {
			b.Fatal(err)
		}
		suite.Run(ctx, rg.Net, core.NewTrace()) // warm BDD caches
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			suite.Run(ctx, rg.Net, core.NewTrace())
		}
	})

	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
			if err != nil {
				b.Fatal(err)
			}
			// Build nil → the default arena-clone replicator.
			eng, err := sharded.New(ctx, rg.Net, sharded.Config{Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(ctx, suite); err != nil { // warm replica caches
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(ctx, suite); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotClone measures the O(size) snapshot-clone primitives
// the sharded engine builds its replicas from: the raw bdd.Manager copy,
// the full netmodel.Network clone (manager copy plus topology tables,
// match sets carried by index), and — for contrast — the JSON replica
// rebuild the clone replaced. The manager is sized by a real workload
// first (the regional suite), so the copy moves production-shaped
// tables, not an empty arena.
func BenchmarkSnapshotClone(b *testing.B) {
	ctx := context.Background()
	rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
	if err != nil {
		b.Fatal(err)
	}
	suite, err := testkit.BuiltinSuite("default,connected,internal,agg")
	if err != nil {
		b.Fatal(err)
	}
	suite.Run(ctx, rg.Net, core.NewTrace()) // grow the manager to working size
	rg.Net.ComputeMatchSets()

	b.Run("manager", func(b *testing.B) {
		m := rg.Net.Space.Manager()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Clone()
		}
	})
	b.Run("network", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rg.Net.Clone()
		}
	})
	b.Run("json-rebuild", func(b *testing.B) {
		build := sharded.JSONReplicator(rg.Net)
		for i := 0; i < b.N; i++ {
			if _, err := build(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// cloneStructure rebuilds a network's devices and rules through the
// public builder API without computing match sets — every topogen and
// decode path computes them eagerly, and ComputeMatchSets is one-shot,
// so benchmarks need a virgin copy per iteration.
func cloneStructure(src *netmodel.Network) *netmodel.Network {
	n := netmodel.NewFamily(src.Family())
	for _, d := range src.Devices {
		id := n.AddDevice(d.Name, d.Role, d.ASN)
		for _, ifID := range d.Ifaces {
			n.AddIface(id, src.Iface(ifID).Name)
		}
	}
	for _, r := range src.Rules {
		if r.Table == netmodel.TableACL {
			n.AddACLRule(r.Device, r.Match, r.Deny)
		} else {
			n.AddFIBRule(r.Device, r.Match, r.Action, r.Origin)
		}
	}
	return n
}

// BenchmarkComputeMatchSets measures the match-set derivation kernel on
// a fat-tree: every rule's raw BDD plus the first-match-wins Diff chain.
func BenchmarkComputeMatchSets(b *testing.B) {
	ft := fatTree(b, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := cloneStructure(ft.Net)
		b.StartTimer()
		net.ComputeMatchSets()
	}
}

// BenchmarkProbeGeneration measures the ATPG-style gap-closing pass.
func BenchmarkProbeGeneration(b *testing.B) {
	ft := fatTree(b, 4)
	cov := core.NewCoverage(ft.Net, core.NewTrace())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probegen.Generate(context.Background(), core.NewCoverage(ft.Net, core.NewTrace()), probegen.Options{})
	}
	_ = cov
}

// BenchmarkChurn is the incremental-evaluation headline: the cost of
// absorbing a single-rule delta on the regional Clos through the delta
// engine versus the full re-evaluation it replaces (decode the wire
// bytes into a fresh BDD space and re-derive every match set). The
// delta path re-derives one device's tables; the rebuild re-derives
// ~2000 rules' worth.
func BenchmarkChurn(b *testing.B) {
	b.Run("delta-single-rule", func(b *testing.B) {
		rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := delta.NewEngine(rg.Net, core.NewTrace())
		if err != nil {
			b.Fatal(err)
		}
		// Alternate one FIB route between two targets so every
		// iteration commits a real modification.
		spec := rg.Net.RuleSpecOf(1)
		dsts := [2]string{"10.250.0.0/16", "10.251.0.0/16"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spec.Match.Dst = dsts[i%2]
			if _, err := eng.Apply(delta.Document{Ops: []delta.Op{
				{Op: delta.OpModify, Rule: 1, Spec: &spec},
			}}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		rg, err := topogen.BuildRegional(topogen.RegionalOpts{})
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rg.Net.EncodeJSON(&buf); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net, err := netmodel.DecodeJSON(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			net.ComputeMatchSets()
		}
	})
}
